#include "runner/executor.hpp"

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "obs/telemetry.hpp"
#include "obs/trace_ring.hpp"
#include "runner/cache.hpp"
#include "sim/experiment.hpp"

namespace bng::runner {

std::atomic<bool>& sweep_interrupt_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

void throw_if_interrupted() {
  if (sweep_interrupt_flag().load(std::memory_order_relaxed)) throw SweepInterrupted();
}

RunRecord run_job(const Scenario& scenario, const SweepPoint& point,
                  std::uint32_t point_index, std::uint32_t ordinal,
                  std::shared_ptr<const sim::PrebuiltWorkload> pool,
                  obs::TraceRing* trace, std::uint64_t* events_executed,
                  obs::SweepTelemetry* telemetry) {
  // Cache consult lives here, in the single funnel every executor (threads,
  // worker processes, TCP fleet) goes through, so --jobs/--procs/--hosts all
  // cache identically. A scenario without a serializable source or a config
  // with a node_factory cannot be keyed and always runs fresh.
  RunCache* const cache = active_run_cache();
  const bool cacheable =
      cache != nullptr && scenario.source.has_value() && sim::config_cacheable(point.config);
  CacheKey key;
  if (cacheable) {
    key.scenario_hash = scenario_source_hash(scenario);
    key.config_digest = sim::config_digest(point.config);
    key.seed = job_seed(scenario.seed_base, point_index, ordinal);
    if (std::optional<RunRecord> hit = cache->lookup(key)) {
      // The entry is keyed by (config, seed), so the same record can answer
      // for a different grid position (e.g. a refined subset vs the dense
      // grid); stamp the identity of the job being answered.
      hit->point = point_index;
      hit->ordinal = ordinal;
      if (events_executed != nullptr) *events_executed = 0;
      return *std::move(hit);
    }
  }

  sim::ExperimentConfig cfg = point.config;
  cfg.seed = job_seed(scenario.seed_base, point_index, ordinal);
  cfg.shared_workload = std::move(pool);
  cfg.trace = trace;
  cfg.parallel_telemetry = telemetry;
  // RunHook scenarios drive the run themselves (step the queue, mutate
  // scheduler state mid-flight); those assumptions are serial-only.
  if (scenario.run) cfg.shards = 1;

  sim::Experiment exp(std::move(cfg));
  NamedValues hook_values;
  if (scenario.run) {
    exp.build();
    scenario.run(exp, hook_values);
  } else {
    exp.run();
  }
  NamedValues values = standard_metric_values(exp);
  values.insert(values.end(), hook_values.begin(), hook_values.end());
  if (scenario.extra) scenario.extra(exp, values);
  if (events_executed != nullptr) *events_executed = exp.events_executed();
  RunRecord record = extract_record(exp, std::move(values), point_index, ordinal);
  if (cacheable) cache->store(key, record);
  return record;
}

namespace {

/// Shared state for one *distinct workload* (keyed by sim::workload_digest,
/// not by point): the lazily built tx pool and the count of jobs still due
/// to use it. Points whose config deltas do not touch the workload inputs —
/// e.g. an alpha x gamma attack grid — share a single pool, and the last
/// finishing job of the digest drops it so a long sweep holds at most
/// (active distinct workloads) pools.
struct PoolState {
  std::once_flag build_once;
  std::shared_ptr<const sim::PrebuiltWorkload> pool;
  std::atomic<std::uint32_t> remaining{0};
};

class ThreadPoolExecutor final : public Executor {
 public:
  explicit ThreadPoolExecutor(std::uint32_t jobs) : jobs_(jobs) {}

  std::uint32_t run(const ExecutionPlan& plan, const RecordSink& sink) override {
    const std::size_t n_jobs =
        plan.points.size() * static_cast<std::size_t>(plan.seeds);
    // Resume support: only jobs without a recovered record run.
    std::vector<std::size_t> pending;
    pending.reserve(n_jobs);
    for (std::size_t job = 0; job < n_jobs; ++job)
      if (!plan_job_done(plan, job)) pending.push_back(job);

    std::uint32_t workers = jobs_;
    if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
    workers = static_cast<std::uint32_t>(
        std::min<std::size_t>(workers, std::max<std::size_t>(pending.size(), 1)));

    std::unordered_map<std::uint64_t, std::unique_ptr<PoolState>> pool_states;
    std::vector<PoolState*> state_of_point(plan.points.size(), nullptr);
    if (plan.share_workload) {
      for (std::size_t p = 0; p < plan.points.size(); ++p) {
        auto& slot = pool_states[sim::workload_digest(plan.points[p].config)];
        if (!slot) slot = std::make_unique<PoolState>();
        state_of_point[p] = slot.get();
      }
      for (const std::size_t job : pending)
        state_of_point[job / plan.seeds]->remaining.fetch_add(1, std::memory_order_relaxed);
    }

    std::atomic<std::size_t> next_job{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto run_one = [&](std::size_t job) {
      const std::size_t p = job / plan.seeds;
      const auto ordinal = static_cast<std::uint32_t>(job % plan.seeds);

      PoolState* const st = state_of_point[p];
      if (st != nullptr) {
        // The pool is a seed-independent pure function of the point config
        // (which job wins the call_once race must not matter), so the
        // config goes in with its seed untouched.
        std::call_once(st->build_once,
                       [&] { st->pool = sim::build_shared_workload(plan.points[p].config); });
      }
      // run_job scopes the experiment, so it is destroyed on this worker
      // thread before the pool refcount below is released.
      std::uint64_t events = 0;
      auto pool = st != nullptr ? st->pool : nullptr;
      if (plan.trace_mask != 0) {
        obs::TraceRing ring(plan.trace_mask);
        sink(run_job(plan.scenario, plan.points[p], static_cast<std::uint32_t>(p),
                     ordinal, std::move(pool), &ring, &events, plan.telemetry));
        if (plan.trace_sink)
          plan.trace_sink(static_cast<std::uint32_t>(p), ordinal, ring);
      } else {
        sink(run_job(plan.scenario, plan.points[p], static_cast<std::uint32_t>(p),
                     ordinal, std::move(pool), nullptr, &events, plan.telemetry));
      }
      if (plan.telemetry != nullptr) plan.telemetry->add_events(events);
      if (st != nullptr && st->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
        st->pool.reset();
    };

    auto worker_loop = [&] {
      for (;;) {
        const std::size_t slot = next_job.fetch_add(1, std::memory_order_relaxed);
        if (slot >= pending.size()) return;
        try {
          throw_if_interrupted();
          run_one(pending[slot]);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          // Drain the queue: later jobs are skipped once a job has failed.
          next_job.store(pending.size(), std::memory_order_relaxed);
          return;
        }
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::uint32_t w = 0; w < workers; ++w) threads.emplace_back(worker_loop);
    for (auto& t : threads) t.join();
    if (first_error) std::rethrow_exception(first_error);
    return workers;
  }

 private:
  std::uint32_t jobs_;
};

}  // namespace

std::unique_ptr<Executor> make_thread_executor(std::uint32_t jobs) {
  return std::make_unique<ThreadPoolExecutor>(jobs);
}

}  // namespace bng::runner
