// RunRecord: the self-contained result of one (sweep point × seed) job.
//
// Everything downstream of a job — aggregation, emitters, the CLI artifacts
// — consumes these records, and nothing else. A record is a pure function of
// (scenario, point index, seed ordinal), carries its own identity, and has a
// byte-stable serialized form (runner/record_codec.hpp), so the dispatch
// substrate is pluggable: the in-process thread pool and the ngsim --worker
// process pool produce bit-identical streams, and a future socket-based
// multi-machine dispatcher is an incremental change on top.
#pragma once

#include <cstdint>
#include <optional>

#include "metrics/metrics.hpp"
#include "runner/aggregate.hpp"

namespace bng::sim {
class Experiment;
}

namespace bng::runner {

struct RunRecord {
  std::uint32_t point = 0;    ///< index into the expanded sweep grid
  std::uint32_t ordinal = 0;  ///< seed ordinal within the point
  std::uint64_t seed = 0;     ///< the RNG seed the job actually ran with
  std::uint64_t digest = 0;   ///< FNV-1a determinism digest (runner/digest.hpp)
  /// Standard metrics followed by scenario-hook extras (schema order is the
  /// emit order; aggregation requires uniform schemas within a point).
  NamedValues values;
  /// Present when the config declared an adversary: the §2 revenue/fairness
  /// accounting for that node.
  std::optional<metrics::AttackerReport> attacker;
};

/// The engine's per-job seeding rule (kept in one place so every executor —
/// threads, worker processes — derives identical seeds).
[[nodiscard]] constexpr std::uint64_t job_seed(std::uint64_t seed_base,
                                               std::uint64_t point_index,
                                               std::uint32_t ordinal) {
  return seed_base + point_index * 1'000'000 + ordinal;
}

/// Flatten a finished experiment's metrics report into the record value
/// schema (metrics::to_named_values over compute_metrics).
NamedValues standard_metric_values(const sim::Experiment& exp);

/// Extract the full record from a finished experiment: identity, the
/// determinism digest over (generated blocks, pow count, `values`), and the
/// attacker report when an adversary was configured. `values` must already
/// hold the complete metric set (standard + hooks) — the digest covers it.
RunRecord extract_record(const sim::Experiment& exp, NamedValues values,
                         std::uint32_t point, std::uint32_t ordinal);

}  // namespace bng::runner
