#include "runner/worker_protocol.hpp"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <stdexcept>

#include "runner/cache.hpp"
#include "runner/executor.hpp"
#include "sim/experiment.hpp"

namespace bng::runner {

using wire::put_u16;
using wire::put_u32;

std::string handshake_payload(const ScenarioSource& source, bool share_workload,
                              WorkerHooks hooks, std::uint32_t heartbeat_ms) {
  std::string p;
  p.push_back(static_cast<char>(FrameKind::kHandshake));
  put_u16(p, kRecordCodecVersion);
  p.push_back(source.kind == ScenarioSource::Kind::kBuiltin ? 0 : 1);
  put_u32(p, static_cast<std::uint32_t>(source.ref.size()));
  p += source.ref;
  put_u32(p, source.knobs.nodes);
  put_u32(p, source.knobs.blocks);
  p.push_back(share_workload ? 1 : 0);
  put_u32(p, hooks.kill_after);
  put_u32(p, hooks.hang_after);
  put_u32(p, heartbeat_ms);
  return p;
}

std::string job_payload(std::uint32_t point, std::uint32_t ordinal) {
  std::string p;
  p.push_back(static_cast<char>(FrameKind::kJob));
  put_u32(p, point);
  put_u32(p, ordinal);
  return p;
}

std::string error_payload(std::string_view message) {
  std::string p;
  p.push_back(static_cast<char>(FrameKind::kError));
  p += message;
  return p;
}

std::string heartbeat_payload() {
  return std::string(1, static_cast<char>(FrameKind::kHeartbeat));
}

std::string heartbeat_payload(const obs::WorkerStatsFrame& stats) {
  std::string p;
  p.push_back(static_cast<char>(FrameKind::kHeartbeat));
  put_u32(p, stats.jobs_done);
  put_u32(p, stats.pool_rebuilds);
  wire::put_u64(p, stats.busy_ms);
  put_u32(p, stats.cache_hits);
  put_u32(p, stats.cache_misses);
  put_u32(p, stats.cache_stale);
  put_u32(p, stats.cache_stores);
  return p;
}

std::optional<obs::WorkerStatsFrame> parse_heartbeat_stats(wire::Reader& in) {
  if (in.pos >= in.data.size()) return std::nullopt;  // bare beacon
  obs::WorkerStatsFrame f;
  f.jobs_done = in.u32();
  f.pool_rebuilds = in.u32();
  f.busy_ms = in.u64();
  // Cache counters arrived with the record cache; a frame ending at busy_ms
  // (a pre-cache worker) is still valid and leaves them zero.
  if (in.pos < in.data.size()) {
    f.cache_hits = in.u32();
    f.cache_misses = in.u32();
    f.cache_stale = in.u32();
    f.cache_stores = in.u32();
  }
  return f;
}

obs::WorkerStatsFrame WorkerState::stats_frame() const {
  obs::WorkerStatsFrame f;
  f.jobs_done = jobs_done.load(std::memory_order_relaxed);
  f.pool_rebuilds = pool_rebuilds.load(std::memory_order_relaxed);
  f.busy_ms = busy_ms.load(std::memory_order_relaxed);
  if (const RunCache* cache = active_run_cache()) {
    const RunCache::Counters c = cache->counters();
    f.cache_hits = static_cast<std::uint32_t>(c.hits);
    f.cache_misses = static_cast<std::uint32_t>(c.misses);
    f.cache_stale = static_cast<std::uint32_t>(c.stale);
    f.cache_stores = static_cast<std::uint32_t>(c.stores);
  }
  return f;
}

void worker_handshake(WorkerState& st, wire::Reader& in) {
  const std::uint16_t version = in.u16();
  if (version != kRecordCodecVersion)
    throw CodecError("worker speaks codec version " +
                     std::to_string(kRecordCodecVersion) + ", dispatcher sent " +
                     std::to_string(version));
  const std::uint8_t kind = in.u8();
  const std::uint32_t ref_len = in.u32();
  const std::string ref = in.str(ref_len);
  RunKnobs knobs;
  knobs.nodes = in.u32();
  knobs.blocks = in.u32();
  st.share_workload = in.u8() != 0;
  st.hooks.kill_after = in.u32();
  st.hooks.hang_after = in.u32();
  st.heartbeat_ms = in.u32();
  if (kind == 0) {
    st.scenario = make_scenario(ref, knobs);
    if (!st.scenario)
      throw std::runtime_error("worker: unknown scenario '" + ref + "'");
  } else {
    st.scenario = load_scenario_string(ref, "<inline>", knobs);
  }
  st.points = expand(*st.scenario);
}

bool worker_job(WorkerState& st, wire::Reader& in, const SendPayload& send) {
  if (!st.scenario) throw std::runtime_error("worker: job before handshake");
  const std::uint32_t point = in.u32();
  const std::uint32_t ordinal = in.u32();
  if (point >= st.points.size())
    throw std::runtime_error("worker: job point out of range");
  if (st.hooks.kill_after != kHookDisabled && st.jobs_done >= st.hooks.kill_after)
    ::raise(SIGKILL);  // test hook: die mid-job, record unsent
  if (st.hooks.hang_after != kHookDisabled && st.jobs_done >= st.hooks.hang_after) {
    // Test hook: hang, not die — the heartbeat thread (if any) keeps
    // beating, so only a per-job deadline can catch this worker.
    for (;;) ::usleep(50'000);
  }
  const auto t0 = std::chrono::steady_clock::now();
  if (st.share_workload) {
    // Keyed by workload digest, not point index: consecutive jobs whose
    // points share workload inputs reuse the pool. Seed-independent pure
    // function of those inputs (see the thread executor): rebuilt pools are
    // bit-identical across workers.
    const std::uint64_t digest = sim::workload_digest(st.points[point].config);
    if (!st.pool || st.pool_digest != digest) {
      st.pool = sim::build_shared_workload(st.points[point].config);
      st.pool_digest = digest;
      st.pool_rebuilds.fetch_add(1, std::memory_order_relaxed);
    }
  }
  RunRecord rec = run_job(*st.scenario, st.points[point], point, ordinal,
                          st.share_workload ? st.pool : nullptr);
  st.jobs_done.fetch_add(1, std::memory_order_relaxed);
  st.busy_ms.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()),
      std::memory_order_relaxed);
  std::string payload;
  payload.push_back(static_cast<char>(FrameKind::kRecord));
  payload += encode_record(rec);
  return send(payload);
}

}  // namespace bng::runner
