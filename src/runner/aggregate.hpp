// Aggregation layer: fold per-seed metric samples into summary statistics.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace bng::runner {

/// Summary of one metric over the seeds of a sweep point.
struct MetricAggregate {
  std::size_t n = 0;
  double mean = 0;
  double stddev = 0;  ///< sample standard deviation (n-1); 0 for n < 2
  double min = 0;
  double max = 0;
  double p50 = 0;  ///< linear-interpolated percentiles
  double p90 = 0;
};

MetricAggregate aggregate(std::vector<double> samples);

/// Ordered (name, value) pairs — the per-seed flat metric record. Ordered so
/// emitters print columns in a stable, registration-defined order.
using NamedValues = std::vector<std::pair<std::string, double>>;

/// Fold per-seed records (all with the same keys, in the same order) into
/// per-metric aggregates. Throws std::invalid_argument if keys mismatch.
std::vector<std::pair<std::string, MetricAggregate>> aggregate_records(
    const std::vector<NamedValues>& records);

}  // namespace bng::runner
