// Declarative sweep scenarios: the experiment *description*, separated from
// the execution engine (runner/sweep.hpp) that runs it.
//
// A Scenario is a base ExperimentConfig plus sweep axes; each axis is a
// vector of named config deltas, and the cartesian product of the axes is
// the sweep grid. The paper's figures (§7-§8) are registered as built-in
// scenarios; ad-hoc sweeps load from a key=value scenario file.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "runner/aggregate.hpp"
#include "sim/experiment.hpp"

namespace bng::runner {

/// Paper §7 workload constants, shared by the built-in scenarios and the
/// bench harnesses: operational Bitcoin payload = 1 MB / 600 s, carried by
/// identical-size transactions (~3.5 tx/s at that rate).
inline constexpr double kPayloadBytesPerSecond = 1'000'000.0 / 600.0;
inline constexpr std::size_t kTxSize = 476;

/// Parse an unsigned env var; `fallback` when unset, unparsable, or 0.
std::uint32_t env_u32(const char* name, std::uint32_t fallback);

/// Scale knobs threaded into scenario factories so one registration covers
/// paper scale and CI smoke scale (REPRO_NODES / REPRO_BLOCKS / CLI flags).
struct RunKnobs {
  std::uint32_t nodes = 1000;
  std::uint32_t blocks = 60;
};

/// A config override applied on top of the scenario base (or earlier axes).
using ConfigDelta = std::function<void(sim::ExperimentConfig&)>;

/// One value along a sweep axis. `x` is the numeric position for fits and
/// plots (0 when the axis is categorical, e.g. a protocol choice).
struct AxisValue {
  std::string label;
  double x = 0;
  ConfigDelta apply;
};

struct Axis {
  std::string name;
  std::vector<AxisValue> values;
};

/// Per-seed hooks. `run` replaces the default Experiment::run() for
/// experiments that drive the clock manually (e.g. the power-drop ablation);
/// `extra` extracts additional per-seed metrics after the run. Both may
/// append to the NamedValues record, which the engine aggregates alongside
/// the standard metrics. Hooks must be callable concurrently.
using RunHook = std::function<void(sim::Experiment&, NamedValues&)>;
using ExtraHook = std::function<void(const sim::Experiment&, NamedValues&)>;

/// How a Scenario can be reconstructed in another process: the registered
/// name (plus the knobs it was instantiated with), or the full scenario-file
/// text. This is the canonical serialized form an ExperimentConfig crosses a
/// process boundary in — scenario identity + the key=value override grammar,
/// not a struct dump — so hooks (run/extra lambdas) survive the trip by
/// being re-instantiated on the far side.
struct ScenarioSource {
  enum class Kind : std::uint8_t {
    kBuiltin,  ///< `ref` is a registered scenario name
    kInline,   ///< `ref` is scenario-file text (load_scenario_string grammar)
  };
  Kind kind = Kind::kBuiltin;
  std::string ref;
  RunKnobs knobs;
};

/// Marks one axis for adaptive refinement (runner/adaptive.hpp): instead of
/// evaluating the axis densely, the driver runs a coarse pass and bisects
/// each sign change of `metric - threshold` down the axis until adjacent
/// grid indices (or an x-gap <= tolerance) bracket the crossover. Refined
/// points keep their dense-grid index, so job_seed() — and therefore every
/// record — is bit-identical to the same point in a dense sweep.
struct RefineSpec {
  std::string axis;       ///< name of the axis to refine (must exist)
  std::string metric;     ///< record value the predicate reads (seed-mean)
  double threshold = 0;   ///< predicate: mean(metric) > threshold
  std::uint32_t coarse = 5;  ///< coarse-pass points per group (min 2)
  double tolerance = 0;   ///< stop when the bracket's x-gap <= this (0: refine
                          ///< to adjacent grid indices)
};

struct Scenario {
  std::string name;
  std::string description;
  sim::ExperimentConfig base;
  std::vector<Axis> axes;
  /// Job seed = seed_base + point_index * 1'000'000 + seed_ordinal.
  std::uint64_t seed_base = 9000;
  RunHook run;
  ExtraHook extra;
  /// Set: ngsim runs this scenario through the adaptive frontier driver by
  /// default (--dense forces the full grid).
  std::optional<RefineSpec> refine;
  /// Set by make_scenario / the scenario-file loaders; required for
  /// process-pool execution (workers rebuild the scenario from it).
  std::optional<ScenarioSource> source;
};

/// A materialized cell of the sweep grid: base + one delta per axis.
struct SweepPoint {
  std::vector<std::string> labels;  ///< one per axis, in axis order
  double x = 0;                     ///< numeric position of the last axis value
  sim::ExperimentConfig config;     ///< seed is set by the engine per job
};

/// Cartesian product of the axes (a single point if there are none).
std::vector<SweepPoint> expand(const Scenario& s);

// --- Registry ---------------------------------------------------------------

using ScenarioFactory = std::function<Scenario(const RunKnobs&)>;

void register_scenario(std::string name, std::string description, ScenarioFactory factory);

/// Instantiate a registered scenario; nullopt if the name is unknown.
std::optional<Scenario> make_scenario(const std::string& name, const RunKnobs& knobs);

/// (name, description) of every registered scenario, sorted by name.
std::vector<std::pair<std::string, std::string>> list_scenarios();

// --- Declarative overrides / scenario files ---------------------------------

/// Apply one `key=value` override to a config (e.g. "block_interval", "10").
/// Throws std::invalid_argument on an unknown key or unparsable value.
void apply_config_override(sim::ExperimentConfig& cfg, std::string_view key,
                           std::string_view value);

/// The keys apply_config_override understands (for --help / error messages).
std::vector<std::string> config_override_keys();

/// Load a scenario from a simple key=value file:
///
///   name        = my_sweep
///   description = what this measures
///   seed_base   = 12000
///   base.protocol       = bitcoin        # bitcoin | ng | ghost
///   base.block_interval = 10
///   axis.max_block_size = 10000, 20000, 40000
///   refine.axis         = max_block_size # adaptive driver (optional)
///   refine.metric       = relative_gain
///   refine.threshold    = 0
///   refine.coarse       = 5
///   refine.tolerance    = 0
///
/// `#` starts a comment; blank lines are ignored. Each `axis.<key>` line
/// adds one sweep axis (file order). The `refine.*` keys mark one axis for
/// the adaptive frontier driver (see RefineSpec); `refine.axis` must name an
/// axis defined in the file. Throws std::runtime_error on I/O or parse
/// errors.
Scenario load_scenario_file(const std::string& path, const RunKnobs& knobs);

/// Parse scenario text in the load_scenario_file grammar. `origin` labels
/// parse errors (a path, or "<inline>" for text shipped to a worker).
Scenario load_scenario_string(const std::string& text, const std::string& origin,
                              const RunKnobs& knobs);

}  // namespace bng::runner
