#include "runner/record.hpp"

#include <utility>

#include "runner/digest.hpp"
#include "sim/experiment.hpp"
#include "sim/trace.hpp"

namespace bng::runner {

namespace {

std::uint64_t seed_digest(const sim::Experiment& exp, const NamedValues& values) {
  Digest d;
  for (const auto& g : exp.trace().generated()) {
    d.bytes(g.block->id().bytes.data(), g.block->id().bytes.size());
    d.u64(g.miner);
    d.f64(g.at);
  }
  d.u64(exp.trace().pow_blocks());
  for (const auto& [name, value] : values) {
    d.bytes(name.data(), name.size());
    d.f64(value);
  }
  return d.h;
}

}  // namespace

NamedValues standard_metric_values(const sim::Experiment& exp) {
  return metrics::to_named_values(metrics::compute_metrics(exp));
}

RunRecord extract_record(const sim::Experiment& exp, NamedValues values,
                         std::uint32_t point, std::uint32_t ordinal) {
  RunRecord rec;
  rec.point = point;
  rec.ordinal = ordinal;
  rec.seed = exp.config().seed;
  rec.values = std::move(values);
  rec.digest = seed_digest(exp, rec.values);
  if (exp.config().adversary.active())
    rec.attacker = metrics::attacker_report(exp, exp.config().adversary.node);
  return rec;
}

}  // namespace bng::runner
