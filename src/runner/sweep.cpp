#include "runner/sweep.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "metrics/metrics.hpp"
#include "runner/digest.hpp"
#include "sim/trace.hpp"

namespace bng::runner {

namespace {

/// Per-point shared state: the lazily built tx pool and the count of jobs
/// still due to use it. The last finishing job drops the pool so a long
/// sweep holds at most (active points) pools, not all of them.
struct PointState {
  std::once_flag build_once;
  std::shared_ptr<const sim::PrebuiltWorkload> pool;
  std::atomic<std::uint32_t> remaining{0};
};

std::uint64_t seed_digest(const sim::Experiment& exp, const NamedValues& values) {
  Digest d;
  for (const auto& g : exp.trace().generated()) {
    d.bytes(g.block->id().bytes.data(), g.block->id().bytes.size());
    d.u64(g.miner);
    d.f64(g.at);
  }
  d.u64(exp.trace().pow_blocks());
  for (const auto& [name, value] : values) {
    d.bytes(name.data(), name.size());
    d.f64(value);
  }
  return d.h;
}

}  // namespace

NamedValues standard_metric_values(const sim::Experiment& exp) {
  const metrics::MetricsReport m = metrics::compute_metrics(exp);
  return {
      {"time_to_prune_p90_s", m.time_to_prune_p90_s},
      {"time_to_win_p90_s", m.time_to_win_p90_s},
      {"mpu", m.mining_power_utilization},
      {"fairness", m.fairness},
      {"consensus_delay_s", m.consensus_delay_s},
      {"tx_per_sec", m.tx_per_sec},
      {"main_pow_blocks", static_cast<double>(m.main_chain_pow_blocks)},
      {"total_pow_blocks", static_cast<double>(m.total_pow_blocks)},
      {"main_micro_blocks", static_cast<double>(m.main_chain_micro_blocks)},
      {"total_micro_blocks", static_cast<double>(m.total_micro_blocks)},
      {"main_chain_txs", static_cast<double>(m.main_chain_txs)},
  };
}

SweepResult run_sweep(const Scenario& scenario, const SweepOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();

  const std::vector<SweepPoint> points = expand(scenario);
  const std::uint32_t seeds = std::max<std::uint32_t>(options.seeds, 1);

  SweepResult result;
  result.scenario = scenario.name;
  result.description = scenario.description;
  result.seeds = seeds;
  result.points.resize(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    result.points[p].labels = points[p].labels;
    result.points[p].x = points[p].x;
    result.points[p].seeds.resize(seeds);
  }

  std::vector<PointState> states(points.size());
  for (auto& st : states) st.remaining.store(seeds, std::memory_order_relaxed);

  const std::size_t n_jobs = points.size() * seeds;
  std::uint32_t workers = options.jobs;
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  workers = static_cast<std::uint32_t>(std::min<std::size_t>(workers, std::max<std::size_t>(n_jobs, 1)));
  result.jobs = workers;

  std::atomic<std::size_t> next_job{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto run_job = [&](std::size_t job) {
    const std::size_t p = job / seeds;
    const std::uint32_t ordinal = static_cast<std::uint32_t>(job % seeds);

    sim::ExperimentConfig cfg = points[p].config;
    cfg.seed = scenario.seed_base + static_cast<std::uint64_t>(p) * 1'000'000 + ordinal;

    PointState& st = states[p];
    if (options.share_workload) {
      std::call_once(st.build_once,
                     [&] { st.pool = sim::build_shared_workload(cfg); });
      cfg.shared_workload = st.pool;
    }

    SeedResult& slot = result.points[p].seeds[ordinal];
    slot.seed = cfg.seed;
    {
      // Scope the experiment so it is destroyed on this worker thread
      // before the pool refcount below is released.
      sim::Experiment exp(std::move(cfg));
      if (scenario.run) {
        exp.build();
        scenario.run(exp, slot.values);
      } else {
        exp.run();
      }
      NamedValues standard = standard_metric_values(exp);
      standard.insert(standard.end(), slot.values.begin(), slot.values.end());
      slot.values = std::move(standard);
      if (scenario.extra) scenario.extra(exp, slot.values);
      slot.digest = seed_digest(exp, slot.values);
    }
    if (st.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) st.pool.reset();
  };

  auto worker_loop = [&] {
    for (;;) {
      const std::size_t job = next_job.fetch_add(1, std::memory_order_relaxed);
      if (job >= n_jobs) return;
      try {
        run_job(job);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Drain the queue: later jobs are skipped once a job has failed.
        next_job.store(n_jobs, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) threads.emplace_back(worker_loop);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  for (PointResult& point : result.points) {
    std::vector<NamedValues> records;
    records.reserve(point.seeds.size());
    for (const SeedResult& s : point.seeds) records.push_back(s.values);
    point.aggregates = aggregate_records(records);
  }

  result.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace bng::runner
