#include "runner/sweep.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/telemetry.hpp"
#include "obs/trace_ring.hpp"
#include "runner/cache.hpp"
#include "runner/executor.hpp"
#include "runner/journal.hpp"
#include "runner/tcp_fleet.hpp"

namespace bng::runner {

namespace {

/// Background stderr progress reporter: one line every ~500 ms plus a final
/// line on stop. Cosmetic only — it never touches sweep results.
class ProgressReporter {
 public:
  explicit ProgressReporter(const obs::SweepTelemetry& telemetry)
      : telemetry_(telemetry), thread_([this] { loop(); }) {}

  ~ProgressReporter() {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    emit();  // final state, always printed (sweeps can finish in < 500 ms)
  }

 private:
  void loop() {
    std::unique_lock lock(mu_);
    while (!stop_) {
      emit();
      cv_.wait_for(lock, std::chrono::milliseconds(500), [this] { return stop_; });
    }
  }

  void emit() {
    const std::string line = telemetry_.progress_line();
    std::fprintf(stderr, "%s\n", line.c_str());
  }

  const obs::SweepTelemetry& telemetry_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

std::unique_ptr<Executor> make_sweep_executor(const SweepOptions& options,
                                              obs::SweepTelemetry* telemetry) {
  if (!options.hosts.empty()) {
    if (telemetry != nullptr) telemetry->init_workers(options.hosts);
    TcpFleetOptions fopt;
    fopt.hosts = options.hosts;
    fopt.tuning = options.fleet;
    fopt.telemetry = telemetry;
    fopt.test_kill_host0_after_jobs = options.test_kill_worker0_after_jobs;
    fopt.test_hang_host0_after_jobs = options.test_hang_host0_after_jobs;
    fopt.test_sever_host0_after_records = options.test_sever_host0_after_records;
    fopt.test_interrupt_after_records = options.test_interrupt_after_records;
    return make_tcp_fleet_executor(std::move(fopt));
  }
  if (options.procs > 0) {
    ProcessPoolOptions popt;
    popt.procs = options.procs;
    popt.worker_argv = options.worker_argv;
    popt.kill_worker0_after_jobs = options.test_kill_worker0_after_jobs;
    return make_process_pool_executor(std::move(popt));
  }
  return make_thread_executor(options.jobs);
}

SweepResult run_sweep(const Scenario& scenario, const SweepOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();

  if (options.trace_mask != 0) {
    if (options.procs > 0 || !options.hosts.empty())
      throw std::runtime_error(
          "run_sweep: --trace requires the in-process executor (no --procs/--hosts)");
    if (options.trace_path.empty())
      throw std::runtime_error("run_sweep: trace_mask set but trace_path empty");
  }

  const std::vector<SweepPoint> points = expand(scenario);
  const std::uint32_t seeds = std::max<std::uint32_t>(options.seeds, 1);
  const std::size_t n_jobs = points.size() * static_cast<std::size_t>(seeds);

  // Telemetry: caller-provided, or a local instance when only --progress
  // needs one. Null `tel` disables all accounting.
  obs::SweepTelemetry local_telemetry;
  obs::SweepTelemetry* tel = options.telemetry;
  if (tel == nullptr && options.progress) tel = &local_telemetry;

  SweepResult result;
  result.scenario = scenario.name;
  result.description = scenario.description;
  result.seeds = seeds;
  result.procs = options.procs;
  result.points.resize(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    result.points[p].labels = points[p].labels;
    result.points[p].x = points[p].x;
    result.points[p].seeds.resize(seeds);
  }

  // Journal / resume: prefill slots from the on-disk records and hand the
  // executors a done-mask so only the holes run. Records are pure functions
  // of (scenario, point, ordinal), so prefilled and freshly-computed slots
  // are indistinguishable in the final artifacts.
  std::unique_ptr<JournalWriter> journal;
  std::vector<std::uint8_t> done;
  std::size_t prefilled = 0;
  if (!options.journal_path.empty()) {
    const JournalHeader expected = make_journal_header(scenario, seeds, points.size());
    if (options.resume) {
      JournalContents contents = read_journal(options.journal_path);
      if (const std::string why = journal_mismatch(contents.header, expected);
          !why.empty())
        throw std::runtime_error("--resume: journal " + options.journal_path +
                                 " does not belong to this sweep: " + why);
      done.assign(n_jobs, 0);
      for (RunRecord& rec : contents.records) {
        if (rec.point >= points.size() || rec.ordinal >= seeds)
          throw std::runtime_error("--resume: journal record identity out of range");
        const std::size_t job =
            static_cast<std::size_t>(rec.point) * seeds + rec.ordinal;
        if (done[job]) continue;  // a crashed run can journal a slot twice
        done[job] = 1;
        ++prefilled;
        result.points[rec.point].seeds[rec.ordinal] = std::move(rec);
      }
      // Truncate the torn tail (if any) and append after the last whole frame.
      journal = std::make_unique<JournalWriter>(options.journal_path,
                                                contents.valid_bytes);
    } else {
      journal = std::make_unique<JournalWriter>(options.journal_path, expected);
    }
  }

  // Records stream in carrying their own identity and land in their slot:
  // the merge order is a function of (point, ordinal) alone, never of
  // executor scheduling — that is what makes --procs N and --hosts a,b
  // bit-identical to --jobs 1. The journal sees each record exactly once,
  // before the in-memory slot, so a crash never loses an acknowledged slot.
  std::atomic<std::size_t> delivered{0};
  std::mutex journal_mu;
  auto sink = [&](RunRecord rec) {
    if (rec.point >= result.points.size() || rec.ordinal >= seeds)
      throw std::runtime_error("run_sweep: record identity out of range");
    if (journal) {
      std::lock_guard lock(journal_mu);
      journal->append(rec);
    }
    result.points[rec.point].seeds[rec.ordinal] = std::move(rec);
    delivered.fetch_add(1, std::memory_order_relaxed);
    if (tel != nullptr) tel->on_record_delivered();
  };

  if (tel != nullptr) tel->start(n_jobs, prefilled);

  // Decision-trace output: one JSONL stream shared by all worker threads.
  std::ofstream trace_out;
  std::mutex trace_mu;
  ExecutionPlan plan{scenario, points, seeds, options.share_workload,
                     done.empty() ? nullptr : &done};
  plan.trace_mask = options.trace_mask;
  plan.telemetry = tel;
  if (options.trace_mask != 0) {
    trace_out.open(options.trace_path, std::ios::trunc);
    if (!trace_out)
      throw std::runtime_error("run_sweep: cannot open trace file " +
                               options.trace_path);
    plan.trace_sink = [&](std::uint32_t point, std::uint32_t ordinal,
                          const obs::TraceRing& ring) {
      std::string lines;
      ring.emit_jsonl(lines, point, ordinal);
      std::lock_guard lock(trace_mu);
      trace_out << lines;
    };
  }
  // Record cache: journal-prefilled jobs were never dispatched, so resume
  // records took precedence before the cache could answer; the cache fills
  // the remaining holes. Installed process-wide for the sweep so run_job
  // consults it no matter which executor dispatches.
  std::unique_ptr<RunCache> cache;
  if (!options.cache_dir.empty()) cache = std::make_unique<RunCache>(options.cache_dir);
  ActiveCacheScope cache_scope(cache.get());

  const std::size_t holes = n_jobs - prefilled;
  if (holes > 0) {
    std::unique_ptr<Executor> executor = make_sweep_executor(options, tel);
    try {
      std::unique_ptr<ProgressReporter> reporter;
      if (options.progress && tel != nullptr)
        reporter = std::make_unique<ProgressReporter>(*tel);
      result.jobs = executor->run(plan, sink);
    } catch (...) {
      // Everything acknowledged so far survives the failure — SIGINT and
      // worker-loss errors alike leave a journal --resume can continue.
      if (journal) journal->flush();
      throw;
    }
  } else {
    result.jobs = 1;  // fully resumed: nothing dispatched
  }
  if (journal) journal->flush();
  if (journal && tel != nullptr) {
    const JournalWriter::Stats js = journal->stats();
    tel->journal_stats(js.fsyncs, js.fsync_total_ms, js.fsync_max_ms);
  }
  if (cache && tel != nullptr) {
    // The dispatcher's own counters plus every fleet worker's self-reported
    // ones (piggybacked on heartbeats). Process-pool workers cache in their
    // own address spaces and report nothing here; their effect still shows
    // as wall-clock and on the shared directory.
    RunCache::Counters c = cache->counters();
    for (const obs::WorkerTelemetry& w : tel->workers()) {
      c.hits += w.reported.cache_hits;
      c.misses += w.reported.cache_misses;
      c.stale += w.reported.cache_stale;
      c.stores += w.reported.cache_stores;
    }
    tel->cache_stats(c.hits, c.misses, c.stale, c.stores);
  }

  if (delivered.load(std::memory_order_relaxed) != holes)
    throw std::runtime_error("run_sweep: executor lost records (" +
                             std::to_string(delivered.load()) + " of " +
                             std::to_string(holes) + " delivered)");

  for (PointResult& point : result.points) {
    std::vector<NamedValues> records;
    records.reserve(point.seeds.size());
    for (const RunRecord& r : point.seeds) records.push_back(r.values);
    point.aggregates = aggregate_records(records);
  }

  result.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace bng::runner
