#include "runner/sweep.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>

#include "runner/executor.hpp"

namespace bng::runner {

SweepResult run_sweep(const Scenario& scenario, const SweepOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();

  const std::vector<SweepPoint> points = expand(scenario);
  const std::uint32_t seeds = std::max<std::uint32_t>(options.seeds, 1);

  SweepResult result;
  result.scenario = scenario.name;
  result.description = scenario.description;
  result.seeds = seeds;
  result.procs = options.procs;
  result.points.resize(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    result.points[p].labels = points[p].labels;
    result.points[p].x = points[p].x;
    result.points[p].seeds.resize(seeds);
  }

  // Records stream in carrying their own identity and land in their slot:
  // the merge order is a function of (point, ordinal) alone, never of
  // executor scheduling — that is what makes --procs N bit-identical to
  // --jobs N for every N.
  std::atomic<std::size_t> delivered{0};
  auto sink = [&](RunRecord rec) {
    if (rec.point >= result.points.size() || rec.ordinal >= seeds)
      throw std::runtime_error("run_sweep: record identity out of range");
    result.points[rec.point].seeds[rec.ordinal] = std::move(rec);
    delivered.fetch_add(1, std::memory_order_relaxed);
  };

  const ExecutionPlan plan{scenario, points, seeds, options.share_workload};
  std::unique_ptr<Executor> executor;
  if (options.procs > 0) {
    ProcessPoolOptions popt;
    popt.procs = options.procs;
    popt.worker_argv = options.worker_argv;
    popt.kill_worker0_after_jobs = options.test_kill_worker0_after_jobs;
    executor = make_process_pool_executor(std::move(popt));
  } else {
    executor = make_thread_executor(options.jobs);
  }
  result.jobs = executor->run(plan, sink);

  const std::size_t n_jobs = points.size() * static_cast<std::size_t>(seeds);
  if (delivered.load(std::memory_order_relaxed) != n_jobs)
    throw std::runtime_error("run_sweep: executor lost records (" +
                             std::to_string(delivered.load()) + " of " +
                             std::to_string(n_jobs) + " delivered)");

  for (PointResult& point : result.points) {
    std::vector<NamedValues> records;
    records.reserve(point.seeds.size());
    for (const RunRecord& r : point.seeds) records.push_back(r.values);
    point.aggregates = aggregate_records(records);
  }

  result.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace bng::runner
