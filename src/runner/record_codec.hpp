// Versioned, byte-stable serialization for RunRecord — the wire format of
// the process-pool worker protocol and the interchange form for any future
// multi-machine dispatcher.
//
// Binary layout (all integers little-endian, doubles as IEEE-754 bits):
//
//   "BNGR" magic | u16 version | u32 point | u32 ordinal | u64 seed
//   | u64 digest | u8 has_attacker | [attacker: 5×f64, 2×u32, 2×u64]
//   | u32 n_values | n × (u16 name_len, name bytes, f64 value)
//
// Decoding is fully bounds-checked: a truncated buffer, a foreign magic, or
// a version this build does not speak throws CodecError — never reads out of
// bounds. The encoding is a pure function of the record (no timestamps, no
// padding), so two processes serializing the same record produce identical
// bytes; that is what makes `--procs N` bit-identical to `--jobs N`.
//
// The JSON form is the human/tooling view of the same data and round-trips
// through decode_record_json (non-finite doubles become null and come back
// as NaN — JSON has no inf/nan).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "runner/record.hpp"

namespace bng::runner {

/// Bump when the binary layout changes; decoders reject foreign versions.
inline constexpr std::uint16_t kRecordCodecVersion = 1;

struct CodecError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Little-endian wire primitives — the single home of the byte layout,
/// shared by the record codec and the worker protocol (process_pool.cpp).
namespace wire {

void put_u16(std::string& out, std::uint16_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_f64(std::string& out, double v);  ///< IEEE-754 bits

/// Bounds-checked cursor; throws CodecError instead of reading past the end.
struct Reader {
  std::string_view data;
  std::size_t pos = 0;

  void need(std::size_t n) const;
  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str(std::size_t n);
};

}  // namespace wire

/// Serialize to the versioned binary form.
[[nodiscard]] std::string encode_record(const RunRecord& record);

/// Parse a binary record; throws CodecError on bad magic, an unsupported
/// version, truncation, or trailing bytes.
[[nodiscard]] RunRecord decode_record(std::string_view bytes);

/// JSON string escaping, shared with the sweep emitter (runner/emit.cpp).
[[nodiscard]] std::string json_escape(std::string_view s);

/// One-line JSON object mirroring the binary fields.
[[nodiscard]] std::string encode_record_json(const RunRecord& record);

/// Parse encode_record_json output (a strict subset of JSON); throws
/// CodecError on malformed input or a version mismatch.
[[nodiscard]] RunRecord decode_record_json(std::string_view json);

// --- Length-prefixed framing -------------------------------------------------
//
// The worker protocol speaks frames over a byte stream: u32 LE payload
// length, then the payload. The first payload byte tags the frame kind.

inline constexpr std::size_t kMaxFrameBytes = 64u << 20;  ///< sanity bound

enum class FrameKind : char {
  kHandshake = 'H',  ///< dispatcher -> worker: scenario source + run options
  kJob = 'J',        ///< dispatcher -> worker: one (point, ordinal) assignment
  kRecord = 'R',     ///< worker -> dispatcher: encode_record bytes
  kError = 'E',      ///< worker -> dispatcher: fatal job/setup error message
  kHeartbeat = 'B',  ///< worker -> dispatcher: periodic liveness beacon (TCP fleet)
};

/// Frame the payload (prepend the u32 length).
[[nodiscard]] std::string frame(std::string_view payload);

/// Extract one complete frame from the front of `buffer`, erasing it; false
/// if the buffer does not yet hold a full frame. Throws CodecError on an
/// oversized length prefix (corrupt stream).
bool take_frame(std::string& buffer, std::string& payload);

}  // namespace bng::runner
