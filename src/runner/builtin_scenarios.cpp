// Built-in scenario registrations: the paper's figures (§7-§8) and the
// ablations, expressed as declarative sweeps for the runner engine. The
// bench/fig*.cpp binaries and the ngsim CLI both run these.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bitcoin/selfish_miner.hpp"
#include "chain/block_tree.hpp"
#include "common/stats.hpp"
#include "metrics/metrics.hpp"
#include "runner/scenario.hpp"
#include "sim/miner_distribution.hpp"

namespace bng::runner {

namespace {

std::string fmt(const char* pattern, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, pattern, v);
  return buf;
}

Axis protocol_axis(std::vector<chain::Protocol> protocols) {
  Axis axis{"protocol", {}};
  for (chain::Protocol proto : protocols) {
    const char* name = proto == chain::Protocol::kBitcoin ? "bitcoin"
                       : proto == chain::Protocol::kGhost ? "ghost"
                                                          : "ng";
    axis.values.push_back(AxisValue{name, 0, [proto](sim::ExperimentConfig& cfg) {
                                      const auto keep = cfg.params;
                                      cfg.params = proto == chain::Protocol::kBitcoinNG
                                                       ? chain::Params::bitcoin_ng()
                                                       : chain::Params::bitcoin();
                                      cfg.params.protocol = proto;
                                      // Carry the scenario's shared knobs over the preset.
                                      cfg.params.max_block_size = keep.max_block_size;
                                      cfg.params.max_microblock_size = keep.max_microblock_size;
                                    }});
  }
  return axis;
}

sim::ExperimentConfig paper_base(const RunKnobs& knobs) {
  sim::ExperimentConfig cfg;
  cfg.num_nodes = knobs.nodes;
  cfg.tx_size = kTxSize;
  cfg.target_blocks = knobs.blocks;
  return cfg;
}

// --- fig6: miner-population skew --------------------------------------------
// The figure itself is the analytic weekly-rank fit (bench/fig6_mining_power
// keeps that part: it needs no simulation); the registered sweep runs the
// consequence of the skew — fairness/MPU as the population exponent varies
// around the paper's fitted -0.27.
Scenario make_fig6(const RunKnobs& knobs) {
  Scenario s;
  s.name = "fig6";
  s.description = "fairness/MPU vs miner-population skew exp(k*rank), paper fit k=-0.27";
  s.seed_base = 600;
  s.base = paper_base(knobs);
  s.base.params = chain::Params::bitcoin();
  s.base.params.block_interval = 10.0;
  s.base.params.max_block_size = 20'000;
  Axis axis{"power_exponent", {}};
  for (double k : {-0.10, -0.20, -0.27, -0.40}) {
    axis.values.push_back(AxisValue{fmt("k=%.2f", k), k, [k](sim::ExperimentConfig& cfg) {
                                      cfg.power_exponent = k;
                                    }});
  }
  s.axes.push_back(std::move(axis));
  return s;
}

// --- fig7: propagation latency vs block size ---------------------------------
Scenario make_fig7(const RunKnobs& knobs) {
  Scenario s;
  s.name = "fig7";
  s.description =
      "block propagation latency vs block size at constant payload load (Bitcoin)";
  s.seed_base = 700;
  s.base = paper_base(knobs);
  s.base.params = chain::Params::bitcoin();
  s.base.target_blocks = std::max(20u, knobs.blocks / 2);
  Axis axis{"block_size", {}};
  for (std::size_t size : {20'000, 40'000, 60'000, 80'000, 100'000}) {
    axis.values.push_back(AxisValue{
        fmt("%.0fB", static_cast<double>(size)), static_cast<double>(size),
        [size](sim::ExperimentConfig& cfg) {
          cfg.params.max_block_size = size;
          // Constant payload load: bigger blocks arrive proportionally rarer.
          cfg.params.block_interval = static_cast<double>(size) / kPayloadBytesPerSecond;
        }});
  }
  s.axes.push_back(std::move(axis));
  s.extra = [](const sim::Experiment& exp, NamedValues& v) {
    auto delays = metrics::propagation_delays(exp);
    v.emplace_back("prop_p25_s", percentile(delays, 25));
    v.emplace_back("prop_p50_s", percentile(delays, 50));
    v.emplace_back("prop_p75_s", percentile(delays, 75));
  };
  return s;
}

// --- fig8a: frequency sweep at constant payload throughput -------------------
Scenario make_fig8a(const RunKnobs& knobs) {
  Scenario s;
  s.name = "fig8a";
  s.description =
      "security metrics vs block frequency at constant payload throughput (1MB/600s)";
  s.seed_base = 8100;
  s.base = paper_base(knobs);
  s.axes.push_back(
      protocol_axis({chain::Protocol::kBitcoin, chain::Protocol::kBitcoinNG}));
  Axis axis{"frequency", {}};
  for (double freq : {0.01, 0.033, 0.1, 0.33, 1.0}) {
    const auto block_size = static_cast<std::size_t>(kPayloadBytesPerSecond / freq);
    axis.values.push_back(AxisValue{
        fmt("%.3f/s", freq), freq, [freq, block_size](sim::ExperimentConfig& cfg) {
          if (cfg.params.protocol == chain::Protocol::kBitcoinNG) {
            // Key blocks stay rare; the microblock plane carries the sweep.
            cfg.params.block_interval = 100.0;
            cfg.params.microblock_interval = 1.0 / freq;
            cfg.params.max_microblock_size = block_size;
          } else {
            cfg.params.block_interval = 1.0 / freq;
            cfg.params.max_block_size = block_size;
          }
        }});
  }
  s.axes.push_back(std::move(axis));
  return s;
}

// --- fig8b: block-size sweep at high frequency -------------------------------
Scenario make_fig8b(const RunKnobs& knobs) {
  Scenario s;
  s.name = "fig8b";
  s.description =
      "security metrics vs block size (Bitcoin 1/10s; NG micro 1/10s, key 1/100s)";
  s.seed_base = 8200;
  s.base = paper_base(knobs);
  s.axes.push_back(
      protocol_axis({chain::Protocol::kBitcoin, chain::Protocol::kBitcoinNG}));
  Axis axis{"block_size", {}};
  for (std::size_t size : {1280, 2500, 5000, 10'000, 20'000, 40'000, 80'000}) {
    axis.values.push_back(AxisValue{
        fmt("%.0fB", static_cast<double>(size)), static_cast<double>(size),
        [size](sim::ExperimentConfig& cfg) {
          if (cfg.params.protocol == chain::Protocol::kBitcoinNG) {
            cfg.params.block_interval = 100.0;
            cfg.params.microblock_interval = 10.0;
            cfg.params.max_microblock_size = size;
          } else {
            cfg.params.block_interval = 10.0;
            cfg.params.max_block_size = size;
          }
        }});
  }
  s.axes.push_back(std::move(axis));
  return s;
}

// --- ablation: GHOST vs Bitcoin vs NG at high contention ---------------------
Scenario make_ablation_ghost(const RunKnobs& knobs) {
  constexpr double kInterval = 5.0;
  constexpr std::size_t kSize = 20'000;
  Scenario s;
  s.name = "ablation_ghost";
  s.description = "GHOST vs Bitcoin vs NG at a fork-heavy operating point (paper §9)";
  s.seed_base = 8500;
  s.base = paper_base(knobs);
  s.base.params.max_block_size = kSize;
  s.base.params.max_microblock_size = kSize;
  Axis axis = protocol_axis(
      {chain::Protocol::kBitcoin, chain::Protocol::kGhost, chain::Protocol::kBitcoinNG});
  for (AxisValue& v : axis.values) {
    ConfigDelta inner = std::move(v.apply);
    v.apply = [inner](sim::ExperimentConfig& cfg) {
      inner(cfg);
      cfg.params.block_interval =
          cfg.params.protocol == chain::Protocol::kBitcoinNG ? 100.0 : kInterval;
      cfg.params.microblock_interval = kInterval;
    };
  }
  s.axes.push_back(std::move(axis));
  s.extra = [](const sim::Experiment& exp, NamedValues& v) {
    // GHOST's all-branch relay is only honest if its network bill is shown.
    v.emplace_back("network_mb", exp.network().bytes_sent() / 1e6);
  };
  return s;
}

// --- ablation: NG key-block interval -----------------------------------------
Scenario make_ablation_keyblock(const RunKnobs& knobs) {
  Scenario s;
  s.name = "ablation_keyblock_freq";
  s.description = "NG key-block interval sweep at fixed 10s microblock cadence (§8.1)";
  s.seed_base = 8300;
  s.base = paper_base(knobs);
  s.base.params = chain::Params::bitcoin_ng();
  s.base.params.microblock_interval = 10.0;
  s.base.params.max_microblock_size =
      static_cast<std::size_t>(10.0 * kPayloadBytesPerSecond);
  Axis axis{"key_interval", {}};
  for (double key_interval : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    axis.values.push_back(AxisValue{fmt("%.0fs", key_interval), key_interval,
                                    [key_interval](sim::ExperimentConfig& cfg) {
                                      cfg.params.block_interval = key_interval;
                                    }});
  }
  s.axes.push_back(std::move(axis));
  return s;
}

// --- ablation: 90% mining-power drop (paper §5.2) ----------------------------
Scenario make_ablation_power_drop(const RunKnobs& knobs) {
  Scenario s;
  s.name = "ablation_power_drop";
  s.description =
      "90% hash-power drop after retarget: NG keeps serializing txs (§5.2)";
  s.seed_base = 8400;
  s.base = paper_base(knobs);
  s.base.num_nodes = std::min(knobs.nodes, 200u);
  s.base.params.block_interval = 30;
  s.base.params.microblock_interval = 5;
  s.base.params.max_block_size = 8000;
  s.base.params.max_microblock_size = 8000;
  s.base.target_blocks = 1'000'000;  // the run hook stops by time, not count
  s.base.retarget = chain::RetargetRule{50, 30.0, 4.0};
  s.axes.push_back(
      protocol_axis({chain::Protocol::kBitcoin, chain::Protocol::kBitcoinNG}));
  // Preserve the preset-independent sizes over the protocol switch.
  for (AxisValue& v : s.axes.back().values) {
    ConfigDelta inner = std::move(v.apply);
    v.apply = [inner](sim::ExperimentConfig& cfg) {
      inner(cfg);
      cfg.params.block_interval = 30;
      cfg.params.microblock_interval = 5;
    };
  }
  s.run = [](sim::Experiment& exp, NamedValues& values) {
    exp.scheduler().start();
    const Seconds phase_len = 1800;
    exp.queue().run_until(phase_len);
    const auto pow_1 = exp.trace().pow_blocks();
    const auto tx_1 = exp.global_tree().best_entry().chain_tx_count;

    // 90% of hash power leaves (paper: miners flee to another chain).
    const auto& powers = exp.powers();
    for (std::uint32_t i = 0; i < exp.config().num_nodes; ++i)
      exp.scheduler().set_power(i, powers[i] * 0.1);

    exp.queue().run_until(2 * phase_len);
    exp.scheduler().stop();
    const auto pow_2 = exp.trace().pow_blocks() - pow_1;
    // A post-drop reorg can land on a best tip carrying fewer cumulative
    // txs than the phase-1 snapshot; clamp instead of wrapping unsigned.
    const auto tip_txs = exp.global_tree().best_entry().chain_tx_count;
    const auto tx_2 = tip_txs > tx_1 ? tip_txs - tx_1 : 0;

    const double mins = phase_len / 60.0;
    values.emplace_back("pow_per_min_before", pow_1 / mins);
    values.emplace_back("txs_per_min_before", static_cast<double>(tx_1) / mins);
    values.emplace_back("pow_per_min_after", pow_2 / mins);
    values.emplace_back("txs_per_min_after", static_cast<double>(tx_2) / mins);
  };
  return s;
}

// --- ablation: selfish mining revenue vs attacker power ----------------------
Scenario make_ablation_selfish(const RunKnobs& knobs) {
  Scenario s;
  s.name = "ablation_selfish_mining";
  s.description = "SM1 revenue share vs attacker power; crossover near 1/4 (§2)";
  s.seed_base = 8600;
  s.base = paper_base(knobs);
  s.base.num_nodes = std::min(knobs.nodes, 100u);
  s.base.params = chain::Params::bitcoin();
  s.base.params.block_interval = 10;
  s.base.params.max_block_size = 4000;
  s.base.target_blocks = std::max(knobs.blocks * 5, 300u);
  s.base.drain_time = 60;
  s.base.node_factory = [](NodeId id, net::Network& net, chain::BlockPtr genesis,
                           const protocol::NodeConfig& ncfg, Rng rng,
                           protocol::IBlockObserver* obs)
      -> std::unique_ptr<protocol::BaseNode> {
    if (id != 0) return nullptr;
    return std::make_unique<bitcoin::SelfishMiner>(id, net, std::move(genesis), ncfg, rng,
                                                   obs);
  };
  Axis axis{"alpha", {}};
  for (double alpha : {0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40}) {
    axis.values.push_back(AxisValue{
        fmt("a=%.2f", alpha), alpha, [alpha](sim::ExperimentConfig& cfg) {
          std::vector<double> powers(cfg.num_nodes,
                                     (1.0 - alpha) / (cfg.num_nodes - 1));
          powers[0] = alpha;
          cfg.custom_powers = std::move(powers);
        }});
  }
  s.axes.push_back(std::move(axis));
  s.extra = [](const sim::Experiment& exp, NamedValues& v) {
    const auto& g = exp.global_tree();
    std::uint32_t attacker_main = 0, total_main = 0;
    for (std::uint32_t idx : g.path_from_genesis(g.best_tip())) {
      if (idx == chain::BlockTree::kGenesisIndex) continue;
      ++total_main;
      if (g.entry(idx).block->miner() == 0) ++attacker_main;
    }
    const double revenue =
        total_main > 0 ? static_cast<double>(attacker_main) / total_main : 0;
    v.emplace_back("revenue_share", revenue);
    v.emplace_back("advantage", revenue - exp.powers()[0]);
    v.emplace_back("branches_abandoned",
                   static_cast<double>(static_cast<const bitcoin::SelfishMiner&>(
                                           *exp.nodes()[0])
                                           .branches_abandoned()));
  };
  return s;
}

// --- smoke: tiny CI sweep ----------------------------------------------------
Scenario make_smoke(const RunKnobs& knobs) {
  (void)knobs;  // deliberately fixed-size: CI wall time must not scale up
  Scenario s;
  s.name = "smoke";
  s.description = "tiny Bitcoin-vs-NG sweep for CI and determinism checks";
  s.seed_base = 100;
  s.base.num_nodes = 40;
  s.base.target_blocks = 8;
  s.base.tx_size = kTxSize;
  s.base.drain_time = 30;
  s.base.params.max_block_size = 5000;
  s.base.params.max_microblock_size = 5000;
  Axis axis = protocol_axis({chain::Protocol::kBitcoin, chain::Protocol::kBitcoinNG});
  for (AxisValue& v : axis.values) {
    ConfigDelta inner = std::move(v.apply);
    v.apply = [inner](sim::ExperimentConfig& cfg) {
      inner(cfg);
      cfg.params.block_interval =
          cfg.params.protocol == chain::Protocol::kBitcoinNG ? 60.0 : 15.0;
      cfg.params.microblock_interval = 5.0;
    };
  }
  s.axes.push_back(std::move(axis));
  return s;
}

}  // namespace

void register_builtin_scenarios() {
  struct Builtin {
    const char* name;
    Scenario (*make)(const RunKnobs&);
  };
  static constexpr Builtin kBuiltins[] = {
      {"fig6", make_fig6},
      {"fig7", make_fig7},
      {"fig8a", make_fig8a},
      {"fig8b", make_fig8b},
      {"ablation_ghost", make_ablation_ghost},
      {"ablation_keyblock_freq", make_ablation_keyblock},
      {"ablation_power_drop", make_ablation_power_drop},
      {"ablation_selfish_mining", make_ablation_selfish},
      {"smoke", make_smoke},
  };
  for (const Builtin& b : kBuiltins) {
    // Description comes from a throwaway smallest-scale instantiation so the
    // registry can list it without running anything.
    Scenario probe = b.make(RunKnobs{10, 1});
    register_scenario(b.name, probe.description, b.make);
  }
}

}  // namespace bng::runner
