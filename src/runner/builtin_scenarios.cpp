// Built-in scenario registrations: the paper's figures (§7-§8) and the
// ablations, expressed as declarative sweeps for the runner engine. The
// bench/fig*.cpp binaries and the ngsim CLI both run these.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bitcoin/selfish_miner.hpp"
#include "chain/block_tree.hpp"
#include "common/stats.hpp"
#include "metrics/metrics.hpp"
#include "ng/malicious_leader.hpp"
#include "runner/scenario.hpp"
#include "sim/miner_distribution.hpp"

namespace bng::runner {

namespace {

std::string fmt(const char* pattern, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, pattern, v);
  return buf;
}

Axis protocol_axis(std::vector<chain::Protocol> protocols) {
  Axis axis{"protocol", {}};
  for (chain::Protocol proto : protocols) {
    const char* name = proto == chain::Protocol::kBitcoin ? "bitcoin"
                       : proto == chain::Protocol::kGhost ? "ghost"
                                                          : "ng";
    axis.values.push_back(AxisValue{name, 0, [proto](sim::ExperimentConfig& cfg) {
                                      const auto keep = cfg.params;
                                      cfg.params = proto == chain::Protocol::kBitcoinNG
                                                       ? chain::Params::bitcoin_ng()
                                                       : chain::Params::bitcoin();
                                      cfg.params.protocol = proto;
                                      // Carry the scenario's shared knobs over the preset.
                                      cfg.params.max_block_size = keep.max_block_size;
                                      cfg.params.max_microblock_size = keep.max_microblock_size;
                                    }});
  }
  return axis;
}

sim::ExperimentConfig paper_base(const RunKnobs& knobs) {
  sim::ExperimentConfig cfg;
  cfg.num_nodes = knobs.nodes;
  cfg.tx_size = kTxSize;
  cfg.target_blocks = knobs.blocks;
  return cfg;
}

// --- fig6: miner-population skew --------------------------------------------
// The figure itself is the analytic weekly-rank fit (bench/fig6_mining_power
// keeps that part: it needs no simulation); the registered sweep runs the
// consequence of the skew — fairness/MPU as the population exponent varies
// around the paper's fitted -0.27.
Scenario make_fig6(const RunKnobs& knobs) {
  Scenario s;
  s.name = "fig6";
  s.description = "fairness/MPU vs miner-population skew exp(k*rank), paper fit k=-0.27";
  s.seed_base = 600;
  s.base = paper_base(knobs);
  s.base.params = chain::Params::bitcoin();
  s.base.params.block_interval = 10.0;
  s.base.params.max_block_size = 20'000;
  Axis axis{"power_exponent", {}};
  for (double k : {-0.10, -0.20, -0.27, -0.40}) {
    axis.values.push_back(AxisValue{fmt("k=%.2f", k), k, [k](sim::ExperimentConfig& cfg) {
                                      cfg.power_exponent = k;
                                    }});
  }
  s.axes.push_back(std::move(axis));
  return s;
}

// --- fig7: propagation latency vs block size ---------------------------------
Scenario make_fig7(const RunKnobs& knobs) {
  Scenario s;
  s.name = "fig7";
  s.description =
      "block propagation latency vs block size at constant payload load (Bitcoin)";
  s.seed_base = 700;
  s.base = paper_base(knobs);
  s.base.params = chain::Params::bitcoin();
  s.base.target_blocks = std::max(20u, knobs.blocks / 2);
  Axis axis{"block_size", {}};
  for (std::size_t size : {20'000, 40'000, 60'000, 80'000, 100'000}) {
    axis.values.push_back(AxisValue{
        fmt("%.0fB", static_cast<double>(size)), static_cast<double>(size),
        [size](sim::ExperimentConfig& cfg) {
          cfg.params.max_block_size = size;
          // Constant payload load: bigger blocks arrive proportionally rarer.
          cfg.params.block_interval = static_cast<double>(size) / kPayloadBytesPerSecond;
        }});
  }
  s.axes.push_back(std::move(axis));
  s.extra = [](const sim::Experiment& exp, NamedValues& v) {
    auto delays = metrics::propagation_delays(exp);
    v.emplace_back("prop_p25_s", percentile(delays, 25));
    v.emplace_back("prop_p50_s", percentile(delays, 50));
    v.emplace_back("prop_p75_s", percentile(delays, 75));
  };
  return s;
}

// --- fig7_10k: propagation latency at 10k+ nodes on a clustered overlay ------
// The scaling companion to fig7: the same latency-vs-size question asked at
// internet scale. The overlay is Topology::clustered (regions joined by
// trunks, short intra-cluster / long cross-cluster latencies) so the answer
// is not distorted by a flat 10k-node uniform graph's 2-hop diameter.
Scenario make_fig7_10k(const RunKnobs& knobs) {
  Scenario s;
  s.name = "fig7_10k";
  s.description =
      "fig7 propagation sweep at >=10k nodes on a clustered internet-like overlay";
  s.seed_base = 710;
  s.base = paper_base(knobs);
  s.base.params = chain::Params::bitcoin();
  s.base.num_nodes = std::max(knobs.nodes, 10'000u);
  s.base.clusters = std::max(8u, s.base.num_nodes / 1000);
  s.base.cluster_trunks = 8;
  s.base.target_blocks = std::max(10u, knobs.blocks / 2);
  Axis axis{"block_size", {}};
  for (std::size_t size : {20'000, 60'000, 100'000}) {
    axis.values.push_back(AxisValue{
        fmt("%.0fB", static_cast<double>(size)), static_cast<double>(size),
        [size](sim::ExperimentConfig& cfg) {
          cfg.params.max_block_size = size;
          cfg.params.block_interval = static_cast<double>(size) / kPayloadBytesPerSecond;
        }});
  }
  s.axes.push_back(std::move(axis));
  s.extra = [](const sim::Experiment& exp, NamedValues& v) {
    auto delays = metrics::propagation_delays(exp);
    v.emplace_back("prop_p50_s", percentile(delays, 50));
    v.emplace_back("prop_p90_s", percentile(delays, 90));
  };
  return s;
}

// --- fig8a: frequency sweep at constant payload throughput -------------------
Scenario make_fig8a(const RunKnobs& knobs) {
  Scenario s;
  s.name = "fig8a";
  s.description =
      "security metrics vs block frequency at constant payload throughput (1MB/600s)";
  s.seed_base = 8100;
  s.base = paper_base(knobs);
  s.axes.push_back(
      protocol_axis({chain::Protocol::kBitcoin, chain::Protocol::kBitcoinNG}));
  Axis axis{"frequency", {}};
  for (double freq : {0.01, 0.033, 0.1, 0.33, 1.0}) {
    const auto block_size = static_cast<std::size_t>(kPayloadBytesPerSecond / freq);
    axis.values.push_back(AxisValue{
        fmt("%.3f/s", freq), freq, [freq, block_size](sim::ExperimentConfig& cfg) {
          if (cfg.params.protocol == chain::Protocol::kBitcoinNG) {
            // Key blocks stay rare; the microblock plane carries the sweep.
            cfg.params.block_interval = 100.0;
            cfg.params.microblock_interval = 1.0 / freq;
            cfg.params.max_microblock_size = block_size;
          } else {
            cfg.params.block_interval = 1.0 / freq;
            cfg.params.max_block_size = block_size;
          }
        }});
  }
  s.axes.push_back(std::move(axis));
  return s;
}

// --- fig8b: block-size sweep at high frequency -------------------------------
Scenario make_fig8b(const RunKnobs& knobs) {
  Scenario s;
  s.name = "fig8b";
  s.description =
      "security metrics vs block size (Bitcoin 1/10s; NG micro 1/10s, key 1/100s)";
  s.seed_base = 8200;
  s.base = paper_base(knobs);
  s.axes.push_back(
      protocol_axis({chain::Protocol::kBitcoin, chain::Protocol::kBitcoinNG}));
  Axis axis{"block_size", {}};
  for (std::size_t size : {1280, 2500, 5000, 10'000, 20'000, 40'000, 80'000}) {
    axis.values.push_back(AxisValue{
        fmt("%.0fB", static_cast<double>(size)), static_cast<double>(size),
        [size](sim::ExperimentConfig& cfg) {
          if (cfg.params.protocol == chain::Protocol::kBitcoinNG) {
            cfg.params.block_interval = 100.0;
            cfg.params.microblock_interval = 10.0;
            cfg.params.max_microblock_size = size;
          } else {
            cfg.params.block_interval = 10.0;
            cfg.params.max_block_size = size;
          }
        }});
  }
  s.axes.push_back(std::move(axis));
  return s;
}

// --- ablation: GHOST vs Bitcoin vs NG at high contention ---------------------
Scenario make_ablation_ghost(const RunKnobs& knobs) {
  constexpr double kInterval = 5.0;
  constexpr std::size_t kSize = 20'000;
  Scenario s;
  s.name = "ablation_ghost";
  s.description = "GHOST vs Bitcoin vs NG at a fork-heavy operating point (paper §9)";
  s.seed_base = 8500;
  s.base = paper_base(knobs);
  s.base.params.max_block_size = kSize;
  s.base.params.max_microblock_size = kSize;
  Axis axis = protocol_axis(
      {chain::Protocol::kBitcoin, chain::Protocol::kGhost, chain::Protocol::kBitcoinNG});
  for (AxisValue& v : axis.values) {
    ConfigDelta inner = std::move(v.apply);
    v.apply = [inner](sim::ExperimentConfig& cfg) {
      inner(cfg);
      cfg.params.block_interval =
          cfg.params.protocol == chain::Protocol::kBitcoinNG ? 100.0 : kInterval;
      cfg.params.microblock_interval = kInterval;
    };
  }
  s.axes.push_back(std::move(axis));
  s.extra = [](const sim::Experiment& exp, NamedValues& v) {
    // GHOST's all-branch relay is only honest if its network bill is shown.
    v.emplace_back("network_mb", exp.network().bytes_sent() / 1e6);
  };
  return s;
}

// --- ablation: NG key-block interval -----------------------------------------
Scenario make_ablation_keyblock(const RunKnobs& knobs) {
  Scenario s;
  s.name = "ablation_keyblock_freq";
  s.description = "NG key-block interval sweep at fixed 10s microblock cadence (§8.1)";
  s.seed_base = 8300;
  s.base = paper_base(knobs);
  s.base.params = chain::Params::bitcoin_ng();
  s.base.params.microblock_interval = 10.0;
  s.base.params.max_microblock_size =
      static_cast<std::size_t>(10.0 * kPayloadBytesPerSecond);
  Axis axis{"key_interval", {}};
  for (double key_interval : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    axis.values.push_back(AxisValue{fmt("%.0fs", key_interval), key_interval,
                                    [key_interval](sim::ExperimentConfig& cfg) {
                                      cfg.params.block_interval = key_interval;
                                    }});
  }
  s.axes.push_back(std::move(axis));
  return s;
}

// --- ablation: 90% mining-power drop (paper §5.2) ----------------------------
Scenario make_ablation_power_drop(const RunKnobs& knobs) {
  Scenario s;
  s.name = "ablation_power_drop";
  s.description =
      "90% hash-power drop after retarget: NG keeps serializing txs (§5.2)";
  s.seed_base = 8400;
  s.base = paper_base(knobs);
  s.base.num_nodes = std::min(knobs.nodes, 200u);
  s.base.params.block_interval = 30;
  s.base.params.microblock_interval = 5;
  s.base.params.max_block_size = 8000;
  s.base.params.max_microblock_size = 8000;
  s.base.target_blocks = 1'000'000;  // the run hook stops by time, not count
  s.base.retarget = chain::RetargetRule{50, 30.0, 4.0};
  s.axes.push_back(
      protocol_axis({chain::Protocol::kBitcoin, chain::Protocol::kBitcoinNG}));
  // Preserve the preset-independent sizes over the protocol switch.
  for (AxisValue& v : s.axes.back().values) {
    ConfigDelta inner = std::move(v.apply);
    v.apply = [inner](sim::ExperimentConfig& cfg) {
      inner(cfg);
      cfg.params.block_interval = 30;
      cfg.params.microblock_interval = 5;
    };
  }
  s.run = [](sim::Experiment& exp, NamedValues& values) {
    exp.scheduler().start();
    const Seconds phase_len = 1800;
    exp.queue().run_until(phase_len);
    const auto pow_1 = exp.trace().pow_blocks();
    const auto tx_1 = exp.global_tree().best_entry().chain_tx_count;

    // 90% of hash power leaves (paper: miners flee to another chain).
    const auto& powers = exp.powers();
    for (std::uint32_t i = 0; i < exp.config().num_nodes; ++i)
      exp.scheduler().set_power(i, powers[i] * 0.1);

    exp.queue().run_until(2 * phase_len);
    exp.scheduler().stop();
    const auto pow_2 = exp.trace().pow_blocks() - pow_1;
    // A post-drop reorg can land on a best tip carrying fewer cumulative
    // txs than the phase-1 snapshot; clamp instead of wrapping unsigned.
    const auto tip_txs = exp.global_tree().best_entry().chain_tx_count;
    const auto tx_2 = tip_txs > tx_1 ? tip_txs - tx_1 : 0;

    const double mins = phase_len / 60.0;
    values.emplace_back("pow_per_min_before", pow_1 / mins);
    values.emplace_back("txs_per_min_before", static_cast<double>(tx_1) / mins);
    values.emplace_back("pow_per_min_after", pow_2 / mins);
    values.emplace_back("txs_per_min_after", static_cast<double>(tx_2) / mins);
  };
  return s;
}

// --- adversary helpers -------------------------------------------------------

Axis alpha_axis(std::initializer_list<double> alphas) {
  Axis axis{"alpha", {}};
  for (double alpha : alphas) {
    axis.values.push_back(AxisValue{fmt("a=%.2f", alpha), alpha,
                                    [alpha](sim::ExperimentConfig& cfg) {
                                      cfg.adversary.power_share = alpha;
                                    }});
  }
  return axis;
}

Axis gamma_axis(std::initializer_list<double> gammas) {
  Axis axis{"gamma", {}};
  for (double gamma : gammas) {
    axis.values.push_back(AxisValue{fmt("g=%.1f", gamma), gamma,
                                    [gamma](sim::ExperimentConfig& cfg) {
                                      cfg.adversary.gamma = gamma;
                                    }});
  }
  return axis;
}

// --- ablation: selfish mining revenue vs attacker power ----------------------
Scenario make_ablation_selfish(const RunKnobs& knobs) {
  Scenario s;
  s.name = "ablation_selfish_mining";
  s.description = "SM1 revenue share vs attacker power; crossover near 1/4 (§2)";
  s.seed_base = 8600;
  s.base = paper_base(knobs);
  s.base.num_nodes = std::min(knobs.nodes, 100u);
  s.base.params = chain::Params::bitcoin();
  s.base.params.block_interval = 10;
  s.base.params.max_block_size = 4000;
  s.base.target_blocks = std::max(knobs.blocks * 5, 300u);
  s.base.drain_time = 60;
  s.base.adversary.kind = sim::AdversarySpec::Kind::kSelfish;
  s.axes.push_back(alpha_axis({0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40}));
  s.extra = [](const sim::Experiment& exp, NamedValues& v) {
    const auto a = metrics::attacker_report(exp, exp.config().adversary.node);
    v.emplace_back("revenue_share", a.revenue_share);
    v.emplace_back("advantage", a.revenue_share - exp.powers()[0]);
    v.emplace_back("branches_abandoned",
                   static_cast<double>(static_cast<const bitcoin::SelfishMiner&>(
                                           *exp.nodes()[0])
                                           .branches_abandoned()));
  };
  return s;
}

// --- selfish_threshold: alpha x gamma x protocol grid ------------------------
Scenario make_selfish_threshold(const RunKnobs& knobs) {
  Scenario s;
  s.name = "selfish_threshold";
  s.description =
      "SM1 revenue share over alpha x gamma x protocol; Bitcoin crossover ~1/4 at "
      "gamma=0.5 (§2)";
  s.seed_base = 8700;
  s.base = paper_base(knobs);
  s.base.num_nodes = std::min(knobs.nodes, 60u);
  s.base.params.max_block_size = 4000;
  s.base.params.max_microblock_size = 4000;
  s.base.target_blocks = std::max(knobs.blocks * 5, 300u);
  s.base.drain_time = 60;
  s.base.adversary.kind = sim::AdversarySpec::Kind::kSelfish;
  Axis proto = protocol_axis(
      {chain::Protocol::kBitcoin, chain::Protocol::kGhost, chain::Protocol::kBitcoinNG});
  for (AxisValue& v : proto.values) {
    ConfigDelta inner = std::move(v.apply);
    v.apply = [inner](sim::ExperimentConfig& cfg) {
      inner(cfg);
      if (cfg.params.protocol == chain::Protocol::kBitcoinNG) {
        // Counted blocks are microblocks; at a 2:1 micro:key cadence the
        // run covers ~target/2 epochs of the key-block plane under attack.
        cfg.params.block_interval = 20.0;
        cfg.params.microblock_interval = 10.0;
      } else {
        cfg.params.block_interval = 10.0;
      }
    };
  }
  s.axes.push_back(std::move(proto));
  s.axes.push_back(gamma_axis({0.0, 0.5, 1.0}));
  s.axes.push_back(alpha_axis({0.15, 0.20, 0.25, 0.30, 0.35}));
  s.extra = [](const sim::Experiment& exp, NamedValues& v) {
    const auto a = metrics::attacker_report(exp, exp.config().adversary.node);
    v.emplace_back("revenue_share", a.revenue_share);
    v.emplace_back("fair_share", a.fair_share);
    v.emplace_back("relative_gain", a.relative_gain);
    v.emplace_back("honest_acceptance", a.honest_acceptance);
  };
  return s;
}

// --- selfish_frontier: alpha crossover surface per gamma x protocol ----------
// The refine-marked companion of selfish_threshold: a fine alpha axis (121
// values, step 0.0025) that the adaptive driver bisects per (protocol, gamma)
// group instead of evaluating densely. `ngsim --scenario selfish_frontier`
// therefore answers "at what alpha does SM1 turn profitable?" with ~1/10 of
// the dense grid's jobs; `--dense` evaluates every point as the oracle.
Scenario make_selfish_frontier(const RunKnobs& knobs) {
  Scenario s;
  s.name = "selfish_frontier";
  s.description =
      "SM1 profitability crossover alpha per gamma x protocol, bisected along a "
      "fine alpha axis (§2)";
  s.seed_base = 9400;
  s.base = paper_base(knobs);
  s.base.num_nodes = std::min(knobs.nodes, 60u);
  s.base.params.max_block_size = 4000;
  s.base.params.max_microblock_size = 4000;
  s.base.target_blocks = std::max(knobs.blocks * 5, 60u);
  s.base.drain_time = 60;
  s.base.adversary.kind = sim::AdversarySpec::Kind::kSelfish;
  Axis proto = protocol_axis({chain::Protocol::kBitcoin, chain::Protocol::kBitcoinNG});
  for (AxisValue& v : proto.values) {
    ConfigDelta inner = std::move(v.apply);
    v.apply = [inner](sim::ExperimentConfig& cfg) {
      inner(cfg);
      if (cfg.params.protocol == chain::Protocol::kBitcoinNG) {
        cfg.params.block_interval = 20.0;
        cfg.params.microblock_interval = 10.0;
      } else {
        cfg.params.block_interval = 10.0;
      }
    };
  }
  s.axes.push_back(std::move(proto));
  s.axes.push_back(gamma_axis({0.0, 0.5, 1.0}));
  // Fine alpha grid: 0.10 .. 0.40 in 0.0025 steps. Labels carry four decimals
  // so neighboring points stay distinct in the artifacts.
  Axis alpha{"alpha", {}};
  for (int i = 0; i <= 120; ++i) {
    const double a = 0.10 + 0.0025 * i;
    alpha.values.push_back(AxisValue{fmt("a=%.4f", a), a,
                                     [a](sim::ExperimentConfig& cfg) {
                                       cfg.adversary.power_share = a;
                                     }});
  }
  s.axes.push_back(std::move(alpha));
  s.refine = RefineSpec{"alpha", "relative_gain", 0.0, 5, 0.0};
  s.extra = [](const sim::Experiment& exp, NamedValues& v) {
    const auto a = metrics::attacker_report(exp, exp.config().adversary.node);
    v.emplace_back("revenue_share", a.revenue_share);
    v.emplace_back("fair_share", a.fair_share);
    v.emplace_back("relative_gain", a.relative_gain);
    v.emplace_back("honest_acceptance", a.honest_acceptance);
  };
  return s;
}

// --- eclipse_selfish: SM1 withholding + eclipse of honest hubs ---------------
// ROADMAP's named composition ("eclipse-assisted selfish mining"): the
// declarative AdversarySpec and the FaultPlan compose freely, so the selfish
// miner can be paired with an eclipse of the best-connected honest nodes.
// While the hubs are dark the honest network finds and propagates fewer
// competing blocks, which plays like a higher effective gamma: the attack
// pays at an alpha where plain SM1 would not.
Scenario make_eclipse_selfish(const RunKnobs& knobs) {
  Scenario s;
  s.name = "eclipse_selfish";
  s.description =
      "SM1 selfish mining while honest hub nodes are eclipsed; revenue share vs "
      "blackout length";
  s.seed_base = 9300;
  s.base = paper_base(knobs);
  s.base.num_nodes = std::min(knobs.nodes, 60u);
  s.base.params = chain::Params::bitcoin();
  s.base.params.block_interval = 10;
  s.base.params.max_block_size = 4000;
  s.base.target_blocks = std::max(knobs.blocks * 5, 300u);
  s.base.drain_time = 60;
  s.base.adversary.kind = sim::AdversarySpec::Kind::kSelfish;
  s.base.adversary.power_share = 0.30;
  Axis axis{"eclipse_s", {}};
  for (double dur : {0.0, 600.0, 1800.0}) {
    axis.values.push_back(AxisValue{
        fmt("dark=%.0fs", dur), dur, [dur](sim::ExperimentConfig& cfg) {
          cfg.faults = {};
          if (dur <= 0) return;
          // Nodes 1-3: the first honest ids. Under the adversary's flat
          // honest population they stand in for the hubs the attacker's
          // sybils would surround in a real deployment.
          for (NodeId hub : {1u, 2u, 3u})
            cfg.faults.eclipses.push_back(net::FaultPlan::Eclipse{60.0, 60.0 + dur, hub});
        }});
  }
  s.axes.push_back(std::move(axis));
  s.extra = [](const sim::Experiment& exp, NamedValues& v) {
    const auto a = metrics::attacker_report(exp, exp.config().adversary.node);
    v.emplace_back("revenue_share", a.revenue_share);
    v.emplace_back("fair_share", a.fair_share);
    v.emplace_back("relative_gain", a.relative_gain);
  };
  return s;
}

// --- partition_heal: timed split of the overlay ------------------------------
Scenario make_partition_heal(const RunKnobs& knobs) {
  Scenario s;
  s.name = "partition_heal";
  s.description =
      "split half the overlay at t=120s, heal after d; fork pressure and recovery";
  s.seed_base = 8800;
  s.base = paper_base(knobs);
  s.base.num_nodes = std::min(knobs.nodes, 100u);
  s.base.params = chain::Params::bitcoin();
  s.base.params.block_interval = 10;
  s.base.params.max_block_size = 8000;
  s.base.target_blocks = std::max(knobs.blocks, 60u);
  s.base.drain_time = 120;
  Axis axis{"partition_s", {}};
  for (double dur : {0.0, 60.0, 180.0, 360.0}) {
    axis.values.push_back(AxisValue{
        fmt("cut=%.0fs", dur), dur, [dur](sim::ExperimentConfig& cfg) {
          cfg.faults = {};
          if (dur <= 0) return;
          net::FaultPlan::Partition cut;
          cut.at = 120.0;
          cut.heal_at = 120.0 + dur;
          for (NodeId v = 0; v < cfg.num_nodes / 2; ++v) cut.group.push_back(v);
          cfg.faults.partitions.push_back(std::move(cut));
        }});
  }
  s.axes.push_back(std::move(axis));
  return s;
}

// --- eclipse: isolate the largest miner --------------------------------------
Scenario make_eclipse(const RunKnobs& knobs) {
  Scenario s;
  s.name = "eclipse";
  s.description =
      "eclipse the largest miner at t=60s for d; its revenue share collapses";
  s.seed_base = 8900;
  s.base = paper_base(knobs);
  s.base.num_nodes = std::min(knobs.nodes, 100u);
  s.base.params = chain::Params::bitcoin();
  s.base.params.block_interval = 10;
  s.base.params.max_block_size = 8000;
  s.base.target_blocks = std::max(knobs.blocks, 60u);
  s.base.drain_time = 60;
  Axis axis{"eclipse_s", {}};
  for (double dur : {0.0, 120.0, 300.0}) {
    axis.values.push_back(AxisValue{
        fmt("dark=%.0fs", dur), dur, [dur](sim::ExperimentConfig& cfg) {
          cfg.faults = {};
          if (dur <= 0) return;
          cfg.faults.eclipses.push_back(net::FaultPlan::Eclipse{60.0, 60.0 + dur, 0});
        }});
  }
  s.axes.push_back(std::move(axis));
  s.extra = [](const sim::Experiment& exp, NamedValues& v) {
    // Node 0 is the largest miner of the exponential population.
    const auto a = metrics::attacker_report(exp, 0);
    v.emplace_back("victim_revenue_share", a.revenue_share);
    v.emplace_back("victim_fair_share", a.fair_share);
    v.emplace_back("victim_relative_gain", a.relative_gain);
  };
  return s;
}

// --- ng_poison: equivocating leader -> fraud proofs -> revocation ------------
Scenario make_ng_poison(const RunKnobs& knobs) {
  Scenario s;
  s.name = "ng_poison";
  s.description =
      "NG leader equivocates; honest leaders place poison txs revoking its revenue "
      "(§4.5)";
  s.seed_base = 9100;
  s.base = paper_base(knobs);
  s.base.num_nodes = std::min(knobs.nodes, 40u);
  s.base.min_degree = 8;  // dense gossip: equivocation evidence spreads
  s.base.params = chain::Params::bitcoin_ng();
  s.base.params.block_interval = 15;
  s.base.params.microblock_interval = 3;
  s.base.params.max_microblock_size = 4000;
  s.base.target_blocks = std::max(knobs.blocks * 2, 120u);
  s.base.drain_time = 60;
  s.base.adversary.kind = sim::AdversarySpec::Kind::kEquivocate;
  s.base.adversary.power_share = 0.30;
  s.base.adversary.equivocate_every = 2;
  Axis axis{"equivocate_every", {}};
  for (std::uint32_t k : {1u, 2u, 4u}) {
    axis.values.push_back(AxisValue{fmt("k=%.0f", static_cast<double>(k)),
                                    static_cast<double>(k),
                                    [k](sim::ExperimentConfig& cfg) {
                                      cfg.adversary.equivocate_every = k;
                                    }});
  }
  s.axes.push_back(std::move(axis));
  s.extra = [](const sim::Experiment& exp, NamedValues& v) {
    const auto& leader = static_cast<const ng::MaliciousLeader&>(
        *exp.nodes()[exp.config().adversary.node]);
    std::uint64_t main_poisons = 0;
    const auto& g = exp.global_tree();
    for (std::uint32_t idx : g.path_from_genesis(g.best_tip()))
      for (const auto& tx : g.entry(idx).block->txs())
        if (tx->poison) ++main_poisons;
    v.emplace_back("equivocations", static_cast<double>(leader.equivocations()));
    v.emplace_back("frauds_detected", static_cast<double>(exp.trace().frauds().size()));
    v.emplace_back("main_chain_poisons", static_cast<double>(main_poisons));
    const auto a = metrics::attacker_report(exp, exp.config().adversary.node);
    v.emplace_back("leader_key_share", a.revenue_share);
  };
  return s;
}

// --- attack_smoke: tiny adversary+fault sweep for CI -------------------------
Scenario make_attack_smoke(const RunKnobs& knobs) {
  (void)knobs;  // deliberately fixed-size: CI wall time must not scale up
  Scenario s;
  s.name = "attack_smoke";
  s.description =
      "tiny selfish-mining + partition and NG-equivocation sweep for CI determinism";
  s.seed_base = 9200;
  s.base.num_nodes = 24;
  s.base.tx_size = kTxSize;
  s.base.drain_time = 30;
  s.base.params.max_block_size = 5000;
  s.base.params.max_microblock_size = 5000;
  Axis axis{"attack", {}};
  axis.values.push_back(AxisValue{"selfish_partition", 0, [](sim::ExperimentConfig& cfg) {
                                    cfg.params.protocol = chain::Protocol::kBitcoin;
                                    cfg.params.block_interval = 10.0;
                                    cfg.target_blocks = 12;
                                    cfg.adversary.kind = sim::AdversarySpec::Kind::kSelfish;
                                    cfg.adversary.power_share = 0.30;
                                    net::FaultPlan::Partition cut;
                                    cut.at = 30.0;
                                    cut.heal_at = 60.0;
                                    for (NodeId v = 0; v < 12; ++v) cut.group.push_back(v);
                                    cfg.faults.partitions.push_back(std::move(cut));
                                  }});
  axis.values.push_back(AxisValue{"ng_equivocate", 1, [](sim::ExperimentConfig& cfg) {
                                    cfg.params = chain::Params::bitcoin_ng();
                                    cfg.params.block_interval = 30.0;
                                    cfg.params.microblock_interval = 3.0;
                                    cfg.params.max_block_size = 5000;
                                    cfg.params.max_microblock_size = 5000;
                                    cfg.target_blocks = 30;
                                    cfg.adversary.kind =
                                        sim::AdversarySpec::Kind::kEquivocate;
                                    cfg.adversary.power_share = 0.35;
                                    cfg.adversary.equivocate_every = 1;
                                  }});
  s.axes.push_back(std::move(axis));
  s.extra = [](const sim::Experiment& exp, NamedValues& v) {
    const auto a = metrics::attacker_report(exp, exp.config().adversary.node);
    v.emplace_back("revenue_share", a.revenue_share);
    v.emplace_back("frauds_detected", static_cast<double>(exp.trace().frauds().size()));
  };
  return s;
}

// --- smoke: tiny CI sweep ----------------------------------------------------
Scenario make_smoke(const RunKnobs& knobs) {
  (void)knobs;  // deliberately fixed-size: CI wall time must not scale up
  Scenario s;
  s.name = "smoke";
  s.description = "tiny Bitcoin-vs-NG sweep for CI and determinism checks";
  s.seed_base = 100;
  s.base.num_nodes = 40;
  s.base.target_blocks = 8;
  s.base.tx_size = kTxSize;
  s.base.drain_time = 30;
  s.base.params.max_block_size = 5000;
  s.base.params.max_microblock_size = 5000;
  Axis axis = protocol_axis({chain::Protocol::kBitcoin, chain::Protocol::kBitcoinNG});
  for (AxisValue& v : axis.values) {
    ConfigDelta inner = std::move(v.apply);
    v.apply = [inner](sim::ExperimentConfig& cfg) {
      inner(cfg);
      cfg.params.block_interval =
          cfg.params.protocol == chain::Protocol::kBitcoinNG ? 60.0 : 15.0;
      cfg.params.microblock_interval = 5.0;
    };
  }
  s.axes.push_back(std::move(axis));
  return s;
}

}  // namespace

void register_builtin_scenarios() {
  struct Builtin {
    const char* name;
    Scenario (*make)(const RunKnobs&);
  };
  static constexpr Builtin kBuiltins[] = {
      {"fig6", make_fig6},
      {"fig7", make_fig7},
      {"fig7_10k", make_fig7_10k},
      {"fig8a", make_fig8a},
      {"fig8b", make_fig8b},
      {"ablation_ghost", make_ablation_ghost},
      {"ablation_keyblock_freq", make_ablation_keyblock},
      {"ablation_power_drop", make_ablation_power_drop},
      {"ablation_selfish_mining", make_ablation_selfish},
      {"selfish_threshold", make_selfish_threshold},
      {"selfish_frontier", make_selfish_frontier},
      {"partition_heal", make_partition_heal},
      {"eclipse", make_eclipse},
      {"eclipse_selfish", make_eclipse_selfish},
      {"ng_poison", make_ng_poison},
      {"attack_smoke", make_attack_smoke},
      {"smoke", make_smoke},
  };
  for (const Builtin& b : kBuiltins) {
    // Description comes from a throwaway smallest-scale instantiation so the
    // registry can list it without running anything.
    Scenario probe = b.make(RunKnobs{10, 1});
    register_scenario(b.name, probe.description, b.make);
  }
}

}  // namespace bng::runner
