#include "runner/adaptive.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>

#include "obs/telemetry.hpp"
#include "runner/cache.hpp"
#include "runner/executor.hpp"
#include "runner/journal.hpp"
#include "runner/record_codec.hpp"  // json_escape

namespace bng::runner {

namespace {

std::string fmt_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// One group = one refine column: the dense-grid points sharing every
/// non-refine axis position, ordered by ascending refine-axis index.
struct Group {
  std::string label;                  ///< joined non-refine labels ("-" if none)
  std::vector<std::uint32_t> points;  ///< dense indices, one per refine value
};

std::vector<Group> build_groups(const Scenario& scenario,
                                const std::vector<SweepPoint>& points,
                                std::size_t refine_axis) {
  std::vector<std::size_t> sizes(scenario.axes.size());
  for (std::size_t a = 0; a < scenario.axes.size(); ++a)
    sizes[a] = scenario.axes[a].values.size();
  std::vector<std::size_t> strides(scenario.axes.size(), 1);
  for (std::size_t a = scenario.axes.size(); a-- > 1;)
    strides[a - 1] = strides[a] * sizes[a];

  // Group key = dense index with the refine-axis component zeroed; iterating
  // points in dense order visits each group's refine column in ascending
  // refine-index order, so the layout is deterministic.
  std::map<std::size_t, Group> by_key;
  for (std::uint32_t p = 0; p < points.size(); ++p) {
    const std::size_t ridx = (p / strides[refine_axis]) % sizes[refine_axis];
    const std::size_t key = p - ridx * strides[refine_axis];
    Group& g = by_key[key];
    if (g.points.empty()) {
      std::string label;
      for (std::size_t a = 0; a < points[p].labels.size(); ++a) {
        if (a == refine_axis) continue;
        if (!label.empty()) label += '/';
        label += points[p].labels[a];
      }
      g.label = label.empty() ? "-" : label;
    }
    g.points.push_back(p);
  }

  std::vector<Group> groups;
  groups.reserve(by_key.size());
  for (auto& [key, g] : by_key) groups.push_back(std::move(g));
  return groups;
}

}  // namespace

AdaptiveResult run_adaptive(const Scenario& scenario, const AdaptiveOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  if (!scenario.refine)
    throw std::runtime_error("run_adaptive: scenario '" + scenario.name +
                             "' has no refine spec");
  if (options.sweep.trace_mask != 0)
    throw std::runtime_error("run_adaptive: --trace is not supported with adaptive "
                             "sweeps (use --dense)");
  const RefineSpec& spec = *scenario.refine;

  const std::vector<SweepPoint> points = expand(scenario);
  const std::uint32_t seeds = std::max<std::uint32_t>(options.sweep.seeds, 1);
  const std::size_t n_jobs = points.size() * static_cast<std::size_t>(seeds);

  std::size_t refine_axis = scenario.axes.size();
  for (std::size_t a = 0; a < scenario.axes.size(); ++a)
    if (scenario.axes[a].name == spec.axis) refine_axis = a;
  if (refine_axis == scenario.axes.size())
    throw std::runtime_error("run_adaptive: refine axis '" + spec.axis +
                             "' is not an axis of scenario '" + scenario.name + "'");
  const Axis& axis = scenario.axes[refine_axis];
  const std::vector<Group> groups = build_groups(scenario, points, refine_axis);

  obs::SweepTelemetry local_telemetry;
  obs::SweepTelemetry* tel = options.sweep.telemetry;
  if (tel == nullptr && options.sweep.progress) tel = &local_telemetry;

  // Every record lands in its dense-grid slot, exactly as in run_sweep; the
  // evaluated subset is assembled from these at the end.
  std::vector<RunRecord> slots(n_jobs);
  std::vector<std::uint8_t> have(n_jobs, 0);

  // Journal / resume against the *dense* grid identity: an adaptive run and
  // a dense run of the same scenario share one journal shape, so either can
  // resume the other's.
  std::unique_ptr<JournalWriter> journal;
  std::size_t prefilled = 0;
  if (!options.sweep.journal_path.empty()) {
    const JournalHeader expected = make_journal_header(scenario, seeds, points.size());
    if (options.sweep.resume) {
      JournalContents contents = read_journal(options.sweep.journal_path);
      if (const std::string why = journal_mismatch(contents.header, expected); !why.empty())
        throw std::runtime_error("--resume: journal " + options.sweep.journal_path +
                                 " does not belong to this sweep: " + why);
      for (RunRecord& rec : contents.records) {
        if (rec.point >= points.size() || rec.ordinal >= seeds)
          throw std::runtime_error("--resume: journal record identity out of range");
        const std::size_t job = static_cast<std::size_t>(rec.point) * seeds + rec.ordinal;
        if (have[job]) continue;
        have[job] = 1;
        ++prefilled;
        slots[job] = std::move(rec);
      }
      journal = std::make_unique<JournalWriter>(options.sweep.journal_path,
                                                contents.valid_bytes);
    } else {
      journal = std::make_unique<JournalWriter>(options.sweep.journal_path, expected);
    }
  }

  std::atomic<std::size_t> delivered{0};
  std::mutex journal_mu;
  auto sink = [&](RunRecord rec) {
    if (rec.point >= points.size() || rec.ordinal >= seeds)
      throw std::runtime_error("run_adaptive: record identity out of range");
    const std::size_t job = static_cast<std::size_t>(rec.point) * seeds + rec.ordinal;
    if (journal) {
      std::lock_guard lock(journal_mu);
      journal->append(rec);
    }
    slots[job] = std::move(rec);
    delivered.fetch_add(1, std::memory_order_relaxed);
    if (tel != nullptr) tel->on_record_delivered();
  };

  if (tel != nullptr) tel->start(n_jobs, prefilled);

  std::unique_ptr<RunCache> cache;
  if (!options.sweep.cache_dir.empty())
    cache = std::make_unique<RunCache>(options.sweep.cache_dir);
  ActiveCacheScope cache_scope(cache.get());

  const auto point_evaluated = [&](std::uint32_t p) {
    for (std::uint32_t o = 0; o < seeds; ++o)
      if (!have[static_cast<std::size_t>(p) * seeds + o]) return false;
    return true;
  };

  AdaptiveResult result;
  result.dense_points = points.size();
  result.dense_jobs = n_jobs;

  std::uint32_t width = 1;
  std::vector<std::uint8_t> done;
  const auto run_wave = [&](const std::vector<std::uint32_t>& wave) {
    done.assign(n_jobs, 1);
    std::size_t want = 0;
    for (const std::uint32_t p : wave)
      for (std::uint32_t o = 0; o < seeds; ++o) {
        const std::size_t job = static_cast<std::size_t>(p) * seeds + o;
        if (have[job]) continue;  // journal prefill or an earlier wave
        done[job] = 0;
        ++want;
      }
    if (want == 0) return;
    ExecutionPlan plan{scenario, points, seeds, options.sweep.share_workload, &done};
    plan.telemetry = tel;
    std::unique_ptr<Executor> executor = make_sweep_executor(options.sweep, tel);
    try {
      width = std::max(width, executor->run(plan, sink));
    } catch (...) {
      if (journal) journal->flush();
      throw;
    }
    result.jobs_dispatched += want;
    for (const std::uint32_t p : wave)
      for (std::uint32_t o = 0; o < seeds; ++o)
        have[static_cast<std::size_t>(p) * seeds + o] = 1;
    if (options.sweep.progress && tel != nullptr)
      std::fprintf(stderr, "%s\n", tel->progress_line().c_str());
  };

  // Predicate: mean over seed ordinals of the named metric, against the
  // configured threshold. Summed in ordinal order, so adaptive and dense
  // evaluations of the same point agree bit-for-bit.
  const auto point_mean = [&](std::uint32_t p) {
    double sum = 0;
    for (std::uint32_t o = 0; o < seeds; ++o) {
      const RunRecord& rec = slots[static_cast<std::size_t>(p) * seeds + o];
      bool found = false;
      for (const auto& [name, value] : rec.values)
        if (name == spec.metric) {
          sum += value;
          found = true;
          break;
        }
      if (!found)
        throw std::runtime_error("run_adaptive: records of scenario '" + scenario.name +
                                 "' carry no metric '" + spec.metric + "'");
    }
    return sum / seeds;
  };
  const auto above = [&](std::uint32_t p) { return point_mean(p) > spec.threshold; };

  if (options.dense) {
    std::vector<std::uint32_t> all(points.size());
    for (std::uint32_t p = 0; p < points.size(); ++p) all[p] = p;
    run_wave(all);
  } else {
    // Coarse pass: `coarse` evenly spaced refine indices per group, endpoints
    // always included.
    const std::size_t n_refine = axis.values.size();
    const std::uint32_t coarse =
        std::max<std::uint32_t>(2, std::min<std::uint32_t>(
                                       std::max<std::uint32_t>(spec.coarse, 2),
                                       static_cast<std::uint32_t>(n_refine)));
    std::vector<std::size_t> coarse_idx;
    if (n_refine <= coarse) {
      for (std::size_t i = 0; i < n_refine; ++i) coarse_idx.push_back(i);
    } else {
      for (std::uint32_t i = 0; i < coarse; ++i) {
        const std::size_t idx = static_cast<std::size_t>(
            std::llround(static_cast<double>(i) * static_cast<double>(n_refine - 1) /
                         static_cast<double>(coarse - 1)));
        if (coarse_idx.empty() || coarse_idx.back() != idx) coarse_idx.push_back(idx);
      }
    }
    std::vector<std::uint32_t> wave;
    for (const Group& g : groups)
      for (const std::size_t idx : coarse_idx) wave.push_back(g.points[idx]);
    run_wave(wave);

    // Bisection: every evaluated-adjacent bracket whose predicate flips and
    // whose indices are not yet adjacent gets its midpoint (by index — pure
    // integer arithmetic, so the trajectory is deterministic). All brackets
    // of a round run as one wave to keep the executor saturated.
    for (;;) {
      wave.clear();
      for (const Group& g : groups) {
        std::vector<std::size_t> ev;
        for (std::size_t i = 0; i < g.points.size(); ++i)
          if (point_evaluated(g.points[i])) ev.push_back(i);
        for (std::size_t k = 0; k + 1 < ev.size(); ++k) {
          const std::size_t lo = ev[k], hi = ev[k + 1];
          if (hi - lo <= 1) continue;
          if (above(g.points[lo]) == above(g.points[hi])) continue;
          if (spec.tolerance > 0 &&
              axis.values[hi].x - axis.values[lo].x <= spec.tolerance)
            continue;
          wave.push_back(g.points[(lo + hi) / 2]);
        }
      }
      if (wave.empty()) break;
      run_wave(wave);
    }
  }

  if (journal) journal->flush();
  if (journal && tel != nullptr) {
    const JournalWriter::Stats js = journal->stats();
    tel->journal_stats(js.fsyncs, js.fsync_total_ms, js.fsync_max_ms);
  }
  if (cache && tel != nullptr) {
    RunCache::Counters c = cache->counters();
    for (const obs::WorkerTelemetry& w : tel->workers()) {
      c.hits += w.reported.cache_hits;
      c.misses += w.reported.cache_misses;
      c.stale += w.reported.cache_stale;
      c.stores += w.reported.cache_stores;
    }
    tel->cache_stats(c.hits, c.misses, c.stale, c.stores);
  }

  if (delivered.load(std::memory_order_relaxed) != result.jobs_dispatched)
    throw std::runtime_error("run_adaptive: executor lost records (" +
                             std::to_string(delivered.load()) + " of " +
                             std::to_string(result.jobs_dispatched) + " delivered)");

  // Frontier scan: per group, every evaluated-adjacent pair where the
  // predicate flips becomes a bracket row. Groups with no flip get one
  // found=false row so every surface cell is represented. Pure function of
  // the evaluated records — the dense oracle runs the identical scan.
  for (const Group& g : groups) {
    std::vector<std::size_t> ev;
    for (std::size_t i = 0; i < g.points.size(); ++i)
      if (point_evaluated(g.points[i])) ev.push_back(i);
    bool any = false;
    for (std::size_t k = 0; k + 1 < ev.size(); ++k) {
      const std::size_t lo = ev[k], hi = ev[k + 1];
      const double lo_v = point_mean(g.points[lo]);
      const double hi_v = point_mean(g.points[hi]);
      if ((lo_v > spec.threshold) == (hi_v > spec.threshold)) continue;
      FrontierRow row;
      row.group = g.label;
      row.found = true;
      row.lo_x = axis.values[lo].x;
      row.hi_x = axis.values[hi].x;
      row.lo_value = lo_v;
      row.hi_value = hi_v;
      row.crossover_x =
          row.lo_x + (spec.threshold - lo_v) * (row.hi_x - row.lo_x) / (hi_v - lo_v);
      result.frontier.push_back(std::move(row));
      any = true;
    }
    if (!any) {
      FrontierRow row;
      row.group = g.label;
      result.frontier.push_back(std::move(row));
    }
  }

  // Assemble the evaluated subset as a SweepResult (ascending dense order),
  // so the standard emitters produce rows that are a strict subset of the
  // dense sweep's.
  result.sweep.scenario = scenario.name;
  result.sweep.description = scenario.description;
  result.sweep.seeds = seeds;
  result.sweep.jobs = width;
  result.sweep.procs = options.sweep.procs;
  for (std::uint32_t p = 0; p < points.size(); ++p) {
    if (!point_evaluated(p)) continue;
    result.evaluated.push_back(p);
    PointResult pr;
    pr.labels = points[p].labels;
    pr.x = points[p].x;
    pr.seeds.reserve(seeds);
    std::vector<NamedValues> records;
    records.reserve(seeds);
    for (std::uint32_t o = 0; o < seeds; ++o) {
      pr.seeds.push_back(slots[static_cast<std::size_t>(p) * seeds + o]);
      records.push_back(pr.seeds.back().values);
    }
    pr.aggregates = aggregate_records(records);
    result.sweep.points.push_back(std::move(pr));
  }

  if (tel != nullptr)
    tel->adaptive_stats(result.dense_points, result.dense_jobs,
                        result.evaluated.size(), result.jobs_dispatched);

  result.sweep.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

std::string frontier_json(const Scenario& scenario, const AdaptiveResult& result) {
  const RefineSpec& spec = *scenario.refine;
  std::string j = "{\n";
  j += "  \"scenario\": \"" + json_escape(scenario.name) + "\",\n";
  j += "  \"axis\": \"" + json_escape(spec.axis) + "\",\n";
  j += "  \"metric\": \"" + json_escape(spec.metric) + "\",\n";
  j += "  \"threshold\": " + fmt_double(spec.threshold) + ",\n";
  j += "  \"seeds\": " + std::to_string(result.sweep.seeds) + ",\n";
  j += "  \"frontier\": [\n";
  for (std::size_t i = 0; i < result.frontier.size(); ++i) {
    const FrontierRow& row = result.frontier[i];
    j += "    {\"group\": \"" + json_escape(row.group) + "\", ";
    if (row.found) {
      j += "\"found\": true, \"lo_x\": " + fmt_double(row.lo_x) +
           ", \"hi_x\": " + fmt_double(row.hi_x) +
           ", \"crossover_x\": " + fmt_double(row.crossover_x) +
           ", \"lo_value\": " + fmt_double(row.lo_value) +
           ", \"hi_value\": " + fmt_double(row.hi_value) + "}";
    } else {
      j += "\"found\": false}";
    }
    j += i + 1 < result.frontier.size() ? ",\n" : "\n";
  }
  j += "  ]\n}\n";
  return j;
}

std::string frontier_csv(const AdaptiveResult& result) {
  std::string csv = "group,found,lo_x,hi_x,crossover_x,lo_value,hi_value\n";
  for (const FrontierRow& row : result.frontier) {
    csv += row.group;
    if (row.found) {
      csv += ",true";
      for (double v : {row.lo_x, row.hi_x, row.crossover_x, row.lo_value, row.hi_value}) {
        csv += ',';
        csv += fmt_double(v);
      }
    } else {
      csv += ",false,,,,,";
    }
    csv += '\n';
  }
  return csv;
}

}  // namespace bng::runner
