// Content-addressed RunRecord cache.
//
// A record is a pure function of (scenario, point config, seed), so once a
// job has run anywhere it never needs to run again: entries are addressed by
// the resolved point-config digest plus the seed, verified against a hash of
// the scenario *source* (builtin name / inline text + knobs), and carry the
// record in the byte-stable record_codec form. The cache is consulted in
// run_job()'s single funnel (runner/executor.cpp), so it behaves identically
// under --jobs, --procs, and --hosts; a worker process opens the same
// directory and shares entries with the dispatcher through the filesystem.
//
// Invalidation is by key, never by time: editing the scenario source (or
// bumping the knobs it was instantiated with) changes the scenario hash and
// turns every old entry stale; changing any config field that affects the
// run changes the config digest and misses instead. Stale entries are
// counted and overwritten in place on the next store.
//
// Precedence when a sweep also journals: --resume prefills from the journal
// *before* any job is dispatched, so journal records always win over cache
// entries; the cache only answers for jobs the journal does not cover.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "runner/record.hpp"
#include "runner/scenario.hpp"

namespace bng::runner {

/// Bump when the entry layout changes; readers treat foreign versions as
/// stale (they are overwritten, not errors).
inline constexpr std::uint16_t kCacheVersion = 1;

struct CacheKey {
  std::uint64_t scenario_hash = 0;  ///< scenario_source_hash()
  std::uint64_t config_digest = 0;  ///< sim::config_digest(point config)
  std::uint64_t seed = 0;           ///< the job seed (job_seed identity)
};

/// FNV-1a over the scenario's serialized identity: source kind, the builtin
/// name or inline text, the knobs it was instantiated with, and seed_base.
/// This is the part of a record's provenance the config digest cannot see —
/// an edited scenario file yields a new hash even when a given point's
/// resolved config is unchanged, so old entries are rejected as stale.
[[nodiscard]] std::uint64_t scenario_source_hash(const Scenario& s);

/// Directory-backed record store. One entry per (config digest, seed) under
/// `dir/<hh>/<config_digest>-<seed>.bngc` (hh = first byte of the config
/// digest in hex, to keep directories small). Thread-safe; stores are
/// write-to-temp + rename, so concurrent processes sharing a directory never
/// observe torn entries.
class RunCache {
 public:
  /// Creates `dir` (and parents) if missing. Throws std::runtime_error when
  /// the directory cannot be created.
  explicit RunCache(std::string dir);

  /// The cached record, or nullopt on miss/stale. The returned record's
  /// (point, ordinal) identity is NOT rewritten — the caller stamps the
  /// identity of the job it is answering for.
  [[nodiscard]] std::optional<RunRecord> lookup(const CacheKey& key);

  /// Insert or overwrite. Failures to write are swallowed (a cache must
  /// never fail a sweep) but do not count as stores.
  void store(const CacheKey& key, const RunRecord& record);

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stale = 0;   ///< present but wrong hash/version/corrupt
    std::uint64_t stores = 0;
  };
  [[nodiscard]] Counters counters() const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  [[nodiscard]] std::string entry_path(const CacheKey& key) const;

  std::string dir_;
  mutable std::mutex mu_;
  Counters counters_;
};

/// Process-wide active cache, consulted by run_job(). Null (the default)
/// disables caching entirely. Set by run_sweep()/run_adaptive() for the
/// duration of a sweep and by the --worker/--serve entry points for the
/// process lifetime; not owned.
void set_run_cache(RunCache* cache);
[[nodiscard]] RunCache* active_run_cache();

/// RAII: install a RunCache as the process-wide active cache for the
/// duration of a sweep, restoring the previous cache — normally none — on
/// every exit path. A null cache changes nothing, so a worker process's
/// long-lived cache survives the sweeps it runs.
class ActiveCacheScope {
 public:
  explicit ActiveCacheScope(RunCache* cache)
      : prev_(active_run_cache()), swapped_(cache != nullptr) {
    if (swapped_) set_run_cache(cache);
  }
  ~ActiveCacheScope() {
    if (swapped_) set_run_cache(prev_);
  }
  ActiveCacheScope(const ActiveCacheScope&) = delete;
  ActiveCacheScope& operator=(const ActiveCacheScope&) = delete;

 private:
  RunCache* prev_;
  bool swapped_;
};

}  // namespace bng::runner
