#include "runner/tcp_fleet.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "obs/telemetry.hpp"
#include "runner/io_util.hpp"
#include "runner/record_codec.hpp"
#include "runner/worker_protocol.hpp"

namespace bng::runner {

namespace {

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

bool send_frame(int fd, std::string_view payload) {
  return io::send_all(fd, frame(payload));
}

struct Endpoint {
  std::string host;
  std::string port;
};

Endpoint parse_endpoint(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size())
    throw std::invalid_argument("tcp fleet: bad host spec '" + spec +
                                "' (expected host:port)");
  return Endpoint{spec.substr(0, colon), spec.substr(colon + 1)};
}

/// Blocking-with-timeout TCP connect; returns the connected fd (set back to
/// blocking, TCP_NODELAY on) or -1 with `error` filled in.
int connect_with_timeout(const Endpoint& ep, std::uint32_t timeout_ms,
                         std::string& error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int gai = ::getaddrinfo(ep.host.c_str(), ep.port.c_str(), &hints, &res);
  if (gai != 0) {
    error = std::string("resolve: ") + ::gai_strerror(gai);
    return -1;
  }
  int fd = -1;
  error = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    int rc;
    do {
      rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      do {
        rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
      } while (rc < 0 && errno == EINTR);
      if (rc > 0) {
        int err = 0;
        socklen_t len = sizeof err;
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err == 0) {
          rc = 0;
        } else {
          errno = err;
          rc = -1;
        }
      } else if (rc == 0) {
        errno = ETIMEDOUT;
        rc = -1;
      }
    }
    if (rc == 0) {
      // Connected: drop non-blocking (the dispatcher gates every recv with
      // poll, so blocking sockets keep the I/O paths simple).
      const int flags = ::fcntl(fd, F_GETFL);
      if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
      set_nodelay(fd);
      break;
    }
    error = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  return fd;
}

enum class JobState : std::uint8_t { kPending, kInflight, kDone };

struct RemoteWorker {
  Endpoint endpoint;
  std::string spec;  ///< original "host:port" for messages
  int fd = -1;
  bool alive = false;
  bool abandoned = false;  ///< reconnect budget exhausted
  std::string buf;
  std::optional<std::size_t> inflight;  ///< job index
  /// True when the in-flight job is a speculative duplicate (straggler
  /// policy) — if its record lands first, that is a speculation win.
  bool speculative = false;
  std::uint64_t last_heard_ms = 0;
  std::uint64_t job_started_ms = 0;
  std::uint32_t reconnects = 0;  ///< consecutive reconnect attempts; reset on a record
  std::uint64_t next_reconnect_ms = 0;
  std::uint32_t records_seen = 0;
  std::string last_error;  ///< most recent connect failure, for diagnostics

  // Telemetry accumulators (reported through obs::SweepTelemetry).
  std::uint32_t total_reconnects = 0;  ///< lifetime, never reset
  std::uint32_t speculation_wins = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t max_silence_ms = 0;
  obs::WorkerStatsFrame reported;  ///< latest piggybacked stats frame
};

class TcpFleetExecutor final : public Executor {
 public:
  explicit TcpFleetExecutor(TcpFleetOptions options) : opt_(std::move(options)) {
    if (opt_.hosts.empty())
      throw std::invalid_argument("tcp fleet: at least one --hosts endpoint required");
  }

  ~TcpFleetExecutor() override { close_all(); }

  std::uint32_t run(const ExecutionPlan& plan, const RecordSink& sink) override {
    if (!plan.scenario.source)
      throw std::invalid_argument(
          "tcp fleet execution needs a shippable scenario (a registered name or a "
          "scenario file); this scenario was built programmatically");
    if (plan.trace_mask != 0)
      throw std::invalid_argument(
          "tcp fleet: decision tracing requires the in-process executor");
    seed_base_ = plan.scenario.seed_base;
    seeds_ = plan.seeds;
    n_points_ = plan.points.size();

    const std::size_t n_jobs = n_points_ * static_cast<std::size_t>(plan.seeds);
    job_state_.assign(n_jobs, JobState::kPending);
    job_attempts_.assign(n_jobs, 0);
    queue_.clear();
    for (std::size_t job = 0; job < n_jobs; ++job) {
      if (plan_job_done(plan, job)) {
        job_state_[job] = JobState::kDone;
      } else {
        queue_.push_back(job);
      }
    }
    const std::size_t n_pending = queue_.size();
    if (n_pending == 0) return static_cast<std::uint32_t>(opt_.hosts.size());

    workers_.clear();
    workers_.reserve(opt_.hosts.size());
    for (const std::string& spec : opt_.hosts) {
      RemoteWorker w;
      w.endpoint = parse_endpoint(spec);
      w.spec = spec;
      workers_.push_back(std::move(w));
    }

    try {
      const std::uint64_t start = now_ms();
      bool any_alive = false;
      for (RemoteWorker& w : workers_) {
        if (try_connect(w, plan, start))
          any_alive = true;
        else
          schedule_reconnect(w, start);
      }
      if (!any_alive) {
        // Fail fast: zero reachable hosts is a configuration error (a typo'd
        // endpoint, workers not started), not a transient fault worth a full
        // reconnect budget. Name every host and what its connect said.
        std::string msg = "tcp fleet: no --hosts endpoint is reachable:";
        for (const RemoteWorker& w : workers_)
          msg += "\n  " + w.spec + " (" + w.last_error + ")";
        throw std::runtime_error(msg);
      }

      std::size_t completed = 0;
      while (completed < n_pending) {
        throw_if_interrupted();
        const std::uint64_t now = now_ms();
        check_liveness(now);
        try_reconnects(plan, now);
        dispatch(now);
        ensure_progress(completed, n_pending);
        poll_io(plan, sink, completed, n_pending);
        publish_telemetry();
      }
    } catch (...) {
      publish_telemetry();
      close_all();
      throw;
    }

    publish_telemetry();  // final snapshot shows end-of-sweep liveness
    close_all();          // orderly EOF: workers return to their accept loop
    return static_cast<std::uint32_t>(workers_.size());
  }

 private:
  WorkerHooks hooks_for(std::size_t worker_index) const {
    WorkerHooks hooks;
    if (worker_index == 0) {
      if (opt_.test_kill_host0_after_jobs >= 0)
        hooks.kill_after = static_cast<std::uint32_t>(opt_.test_kill_host0_after_jobs);
      if (opt_.test_hang_host0_after_jobs >= 0)
        hooks.hang_after = static_cast<std::uint32_t>(opt_.test_hang_host0_after_jobs);
    }
    return hooks;
  }

  /// Connect + handshake. True on success; failure reason in w.last_error.
  bool try_connect(RemoteWorker& w, const ExecutionPlan& plan, std::uint64_t now) {
    const int fd =
        connect_with_timeout(w.endpoint, opt_.tuning.connect_timeout_ms, w.last_error);
    if (fd < 0) return false;
    const std::size_t index = static_cast<std::size_t>(&w - workers_.data());
    if (!send_frame(fd, handshake_payload(*plan.scenario.source, plan.share_workload,
                                          hooks_for(index), opt_.tuning.heartbeat_ms))) {
      w.last_error = "handshake send failed";
      ::close(fd);
      return false;
    }
    w.fd = fd;
    w.alive = true;
    w.buf.clear();
    w.inflight.reset();
    w.speculative = false;
    w.last_heard_ms = now;
    w.next_reconnect_ms = 0;
    return true;
  }

  void check_liveness(std::uint64_t now) {
    for (RemoteWorker& w : workers_) {
      if (!w.alive) continue;
      if (now - w.last_heard_ms > opt_.tuning.heartbeat_timeout_ms) {
        // Dead (or stopped): nothing has arrived inside the window the
        // worker was told to heartbeat within.
        disconnect(w, now);
        continue;
      }
      if (w.inflight && opt_.tuning.job_deadline_ms > 0 &&
          now - w.job_started_ms > opt_.tuning.job_deadline_ms) {
        // Hung, not dead: the worker still heartbeats but its job blew the
        // deadline. Abandon the connection; the job runs elsewhere.
        disconnect(w, now);
      }
    }
  }

  void try_reconnects(const ExecutionPlan& plan, std::uint64_t now) {
    for (RemoteWorker& w : workers_) {
      if (w.alive || w.abandoned || w.next_reconnect_ms == 0 ||
          now < w.next_reconnect_ms)
        continue;
      ++w.reconnects;
      ++w.total_reconnects;
      if (!try_connect(w, plan, now)) schedule_reconnect(w, now);
    }
  }

  void schedule_reconnect(RemoteWorker& w, std::uint64_t now) {
    if (w.abandoned) return;
    if (w.reconnects >= opt_.tuning.max_reconnects) {
      w.abandoned = true;
      w.next_reconnect_ms = 0;
      return;
    }
    const std::uint32_t shift = w.reconnects < 16 ? w.reconnects : 16;
    std::uint64_t delay =
        static_cast<std::uint64_t>(opt_.tuning.reconnect_base_ms) << shift;
    if (delay > opt_.tuning.reconnect_cap_ms) delay = opt_.tuning.reconnect_cap_ms;
    w.next_reconnect_ms = now + delay;
  }

  void dispatch(std::uint64_t now) {
    for (RemoteWorker& w : workers_) {
      if (queue_.empty()) break;
      if (!w.alive || w.inflight) continue;
      const std::size_t job = queue_.front();
      queue_.pop_front();
      if (!assign(w, job, now)) {
        queue_.push_front(job);
        continue;
      }
      job_state_[job] = JobState::kInflight;
    }
    if (queue_.empty() && opt_.tuning.straggler_after_ms > 0) speculate(now);
  }

  /// Straggler policy: once the queue is dry, duplicate the longest-running
  /// single-copy job onto each idle worker. The records dedupe by slot, so a
  /// lost race costs nothing and a won race hides a slow host.
  void speculate(std::uint64_t now) {
    for (RemoteWorker& idle : workers_) {
      if (!idle.alive || idle.inflight) continue;
      std::size_t best_job = SIZE_MAX;
      std::uint64_t best_elapsed = 0;
      for (const RemoteWorker& busy : workers_) {
        if (!busy.alive || !busy.inflight) continue;
        const std::uint64_t elapsed = now - busy.job_started_ms;
        if (elapsed < opt_.tuning.straggler_after_ms || elapsed < best_elapsed)
          continue;
        if (copies_inflight(*busy.inflight) > 1) continue;  // already duplicated
        best_job = *busy.inflight;
        best_elapsed = elapsed;
      }
      if (best_job == SIZE_MAX) return;
      assign(idle, best_job, now, /*speculative=*/true);  // failure leaves the original
    }
  }

  std::size_t copies_inflight(std::size_t job) const {
    std::size_t n = 0;
    for (const RemoteWorker& w : workers_)
      if (w.alive && w.inflight && *w.inflight == job) ++n;
    return n;
  }

  bool assign(RemoteWorker& w, std::size_t job, std::uint64_t now,
              bool speculative = false) {
    const auto point = static_cast<std::uint32_t>(job / seeds_);
    const auto ordinal = static_cast<std::uint32_t>(job % seeds_);
    if (!send_frame(w.fd, job_payload(point, ordinal))) {
      disconnect(w, now);
      return false;
    }
    w.inflight = job;
    w.speculative = speculative;
    w.job_started_ms = now;
    return true;
  }

  void disconnect(RemoteWorker& w, std::uint64_t now) {
    if (w.fd >= 0) ::close(w.fd);
    w.fd = -1;
    w.alive = false;
    w.buf.clear();
    if (w.inflight) {
      const std::size_t job = *w.inflight;
      w.inflight.reset();
      w.speculative = false;
      requeue(job);
    }
    schedule_reconnect(w, now);
  }

  /// Push a snapshot of every worker into the attached telemetry (no-op
  /// without one). Control-plane cost: one mutex round per poll tick.
  void publish_telemetry() const {
    if (opt_.telemetry == nullptr) return;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const RemoteWorker& w = workers_[i];
      obs::WorkerTelemetry t;
      t.endpoint = w.spec;
      t.alive = w.alive;
      t.abandoned = w.abandoned;
      t.records = w.records_seen;
      t.inflight = w.inflight ? 1 : 0;
      t.reconnects = w.total_reconnects;
      t.speculation_wins = w.speculation_wins;
      t.heartbeats = w.heartbeats;
      t.max_silence_ms = w.max_silence_ms;
      t.reported = w.reported;
      opt_.telemetry->update_worker(i, t);
    }
  }

  void requeue(std::size_t job) {
    if (job_state_[job] == JobState::kDone) return;
    if (copies_inflight(job) > 0) return;  // a speculative duplicate survives
    const auto point = static_cast<std::uint32_t>(job / seeds_);
    const auto ordinal = static_cast<std::uint32_t>(job % seeds_);
    if (++job_attempts_[job] >= opt_.tuning.max_job_attempts)
      throw std::runtime_error(
          "tcp fleet: job (point " + std::to_string(point) + ", seed ordinal " +
          std::to_string(ordinal) + ", seed " +
          std::to_string(job_seed(seed_base_, point, ordinal)) + ") lost its worker " +
          std::to_string(job_attempts_[job]) + " times; giving up on the sweep");
    job_state_[job] = JobState::kPending;
    // Front of the queue: the re-run starts before new work, bounding how
    // long a failure can delay the merge.
    queue_.push_front(job);
  }

  /// The graceful-degradation floor: fail loudly the moment no live worker,
  /// no queued reconnect, and no in-flight job can still deliver a record —
  /// never hang the merge loop awaiting one that cannot arrive.
  void ensure_progress(std::size_t completed, std::size_t n_pending) const {
    if (completed >= n_pending) return;
    for (const RemoteWorker& w : workers_) {
      if (w.alive) return;
      if (!w.abandoned && w.next_reconnect_ms != 0) return;
    }
    throw std::runtime_error(
        "tcp fleet: no live workers remain and every reconnect budget is "
        "exhausted (" +
        std::to_string(n_pending - completed) + " of " + std::to_string(n_pending) +
        " jobs incomplete)");
  }

  void poll_io(const ExecutionPlan& plan, const RecordSink& sink,
               std::size_t& completed, std::size_t n_pending) {
    std::vector<pollfd> fds;
    std::vector<std::size_t> index;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].alive) continue;
      fds.push_back(pollfd{workers_[i].fd, POLLIN, 0});
      index.push_back(i);
    }
    // Short tick so liveness checks, reconnect timers, and the interrupt
    // flag are serviced even when no bytes flow.
    const int rc = ::poll(fds.data(), fds.size(), 50);
    if (rc < 0) {
      if (errno == EINTR) return;
      throw std::runtime_error(std::string("tcp fleet: poll: ") + std::strerror(errno));
    }
    const std::uint64_t now = now_ms();
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if (fds[k].revents == 0) continue;
      RemoteWorker& w = workers_[index[k]];
      if (!w.alive) continue;  // disconnected earlier in this pass
      switch (io::recv_some(w.fd, w.buf)) {
        case io::ReadResult::kData:
          if (now - w.last_heard_ms > w.max_silence_ms)
            w.max_silence_ms = now - w.last_heard_ms;
          w.last_heard_ms = now;
          drain_frames(w, plan, sink, completed, now);
          if (completed >= n_pending) return;
          break;
        case io::ReadResult::kEof:
        case io::ReadResult::kError:
          disconnect(w, now);
          break;
      }
    }
  }

  void drain_frames(RemoteWorker& w, const ExecutionPlan& plan, const RecordSink& sink,
                    std::size_t& completed, std::uint64_t now) {
    std::string payload;
    while (w.alive && take_frame(w.buf, payload)) {
      if (payload.empty())
        throw std::runtime_error("tcp fleet: empty frame from " + w.spec);
      switch (static_cast<FrameKind>(payload[0])) {
        case FrameKind::kHeartbeat: {
          // The bytes themselves already refreshed last_heard_ms; a stats
          // frame may ride along (older workers send the bare kind byte).
          ++w.heartbeats;
          wire::Reader in{payload, 1};
          if (const auto stats = parse_heartbeat_stats(in)) w.reported = *stats;
          break;
        }
        case FrameKind::kRecord:
          handle_record(w, std::string_view(payload).substr(1), plan, sink, completed,
                        now);
          break;
        case FrameKind::kError:
          throw std::runtime_error("sweep job failed in worker " + w.spec + ": " +
                                   payload.substr(1));
        default:
          throw std::runtime_error("tcp fleet: unexpected frame from " + w.spec);
      }
    }
  }

  void handle_record(RemoteWorker& w, std::string_view bytes, const ExecutionPlan& plan,
                     const RecordSink& sink, std::size_t& completed, std::uint64_t now) {
    RunRecord rec = decode_record(bytes);
    if (rec.point >= plan.points.size() || rec.ordinal >= plan.seeds)
      throw std::runtime_error("tcp fleet: record identity out of range from " +
                               w.spec);
    const std::size_t job = static_cast<std::size_t>(rec.point) * seeds_ + rec.ordinal;
    if (!w.inflight || *w.inflight != job)
      throw std::runtime_error("tcp fleet: record for a job " + w.spec +
                               " was not assigned");
    const bool was_speculative = w.speculative;
    w.inflight.reset();
    w.speculative = false;
    w.reconnects = 0;  // delivered work proves the host healthy again
    ++w.records_seen;

    if (job_state_[job] != JobState::kDone) {
      job_state_[job] = JobState::kDone;
      ++completed;
      if (was_speculative) ++w.speculation_wins;
      sink(std::move(rec));
      ++records_delivered_;
      if (opt_.test_interrupt_after_records >= 0 &&
          records_delivered_ >=
              static_cast<std::size_t>(opt_.test_interrupt_after_records)) {
        // Deterministic SIGTERM stand-in: raise the flag exactly as the
        // signal handler would, then take the cooperative exit right away.
        sweep_interrupt_flag().store(true, std::memory_order_relaxed);
        throw_if_interrupted();
      }
    }
    // else: a speculative duplicate lost the race — drop it silently.

    const std::size_t index = static_cast<std::size_t>(&w - workers_.data());
    if (index == 0 && opt_.test_sever_host0_after_records >= 0 && !severed_ &&
        w.records_seen >= static_cast<std::uint32_t>(opt_.test_sever_host0_after_records)) {
      severed_ = true;  // test hook: cut the link; reconnect must heal it
      disconnect(w, now);
    }
  }

  void close_all() {
    for (RemoteWorker& w : workers_) {
      if (w.fd >= 0) ::close(w.fd);
      w.fd = -1;
      w.alive = false;
    }
  }

  TcpFleetOptions opt_;
  std::vector<RemoteWorker> workers_;
  std::deque<std::size_t> queue_;
  std::vector<JobState> job_state_;
  std::vector<std::uint32_t> job_attempts_;
  std::size_t n_points_ = 0;
  std::uint32_t seeds_ = 1;
  std::uint64_t seed_base_ = 0;
  std::size_t records_delivered_ = 0;
  bool severed_ = false;
};

// --- Worker (serve) side -----------------------------------------------------

void serve_session(int fd) {
  WorkerState st;
  std::mutex send_mu;
  const SendPayload send = [fd, &send_mu](std::string_view payload) {
    std::lock_guard lock(send_mu);
    return send_frame(fd, payload);
  };

  std::thread heartbeat;
  std::mutex hb_mu;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  auto stop_heartbeat = [&] {
    {
      std::lock_guard lock(hb_mu);
      hb_stop = true;
    }
    hb_cv.notify_all();
    if (heartbeat.joinable()) heartbeat.join();
  };

  try {
    std::string buf;
    std::string payload;
    for (;;) {
      while (take_frame(buf, payload)) {
        if (payload.empty()) throw CodecError("worker: empty frame");
        wire::Reader in{payload, 1};
        switch (static_cast<FrameKind>(payload[0])) {
          case FrameKind::kHandshake:
            worker_handshake(st, in);
            if (st.heartbeat_ms > 0 && !heartbeat.joinable()) {
              // The beacon runs on its own thread so a worker deep in a long
              // job still proves it is alive — the dispatcher's deadline,
              // not its heartbeat timeout, is what judges slow jobs.
              const std::uint32_t interval = st.heartbeat_ms;
              // &st is safe: st outlives the thread (stop_heartbeat joins
              // before serve_session returns), and the stats fields it reads
              // are atomics.
              heartbeat = std::thread([&st, &send, &hb_mu, &hb_cv, &hb_stop, interval] {
                std::unique_lock lock(hb_mu);
                for (;;) {
                  if (hb_cv.wait_for(lock, std::chrono::milliseconds(interval),
                                     [&] { return hb_stop; }))
                    return;
                  lock.unlock();
                  const bool ok = send(heartbeat_payload(st.stats_frame()));
                  lock.lock();
                  if (!ok) return;
                }
              });
            }
            break;
          case FrameKind::kJob:
            if (!worker_job(st, in, send)) {
              stop_heartbeat();
              return;  // dispatcher went away mid-send
            }
            break;
          default:
            throw CodecError("worker: unexpected frame kind");
        }
      }
      if (io::recv_some(fd, buf) != io::ReadResult::kData) break;  // EOF/reset
    }
  } catch (const std::exception& e) {
    send(error_payload(e.what()));
  } catch (...) {
    send(error_payload("unknown worker error"));
  }
  stop_heartbeat();
}

}  // namespace

int make_listen_socket(std::uint16_t port, std::uint16_t& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0)
    throw std::runtime_error(std::string("serve: socket: ") + std::strerror(errno));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error(std::string("serve: bind: ") + std::strerror(saved));
  }
  if (::listen(fd, 16) != 0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error(std::string("serve: listen: ") + std::strerror(saved));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error(std::string("serve: getsockname: ") +
                             std::strerror(saved));
  }
  bound_port = ntohs(bound.sin_port);
  return fd;
}

int serve_loop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return 1;
    }
    set_nodelay(fd);
    // One dispatcher at a time, each connection a fresh session: a crashed
    // dispatcher's --resume successor reconnects and starts clean.
    serve_session(fd);
    ::close(fd);
  }
}

int serve_main(std::uint16_t port) {
  std::uint16_t bound = 0;
  int listen_fd;
  try {
    listen_fd = make_listen_socket(port, bound);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ngsim: %s\n", e.what());
    return 1;
  }
  std::printf("ngsim: serving on port %u\n", bound);
  std::fflush(stdout);
  return serve_loop(listen_fd);
}

std::unique_ptr<Executor> make_tcp_fleet_executor(TcpFleetOptions options) {
  return std::make_unique<TcpFleetExecutor>(std::move(options));
}

}  // namespace bng::runner
