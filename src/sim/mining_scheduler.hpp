// Simulated mining (paper §7 "Simulated Mining").
//
// "We replace the proof of work mechanism with a scheduler that triggers
// block generation at different miners with exponentially distributed
// intervals" — the regtest + in-situ-controller design. A global Poisson
// process at the target rate assigns each win to miner i with probability
// m(i)/Σm, which is statistically identical to independent per-miner
// exponential races.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "chain/difficulty.hpp"
#include "common/rng.hpp"
#include "net/event_queue.hpp"
#include "protocol/base_node.hpp"

namespace bng::sim {

class MiningScheduler {
 public:
  /// `miners[i]` wins with probability powers[i]/Σ. `mean_interval` is the
  /// target expected time between PoW blocks.
  MiningScheduler(net::EventQueue& queue, std::vector<protocol::BaseNode*> miners,
                  std::vector<double> powers, Seconds mean_interval, Rng rng);

  /// Begin scheduling wins. Idempotent.
  void start();

  /// Stop: no further wins are generated (pending win events still fire).
  void stop() { stopped_ = true; }

  /// Change a miner's power (churn experiments, §5.2). Takes effect for
  /// subsequent wins; in difficulty mode the win *rate* adapts too.
  void set_power(std::uint32_t miner, double power);

  /// Enable difficulty dynamics: the effective interval becomes
  /// difficulty / hash_rate, where hash_rate = Σ powers * hash_rate_scale,
  /// and difficulty retargets per `rule` on block generation timestamps.
  /// Initial difficulty is chosen so the starting interval equals
  /// `mean_interval`.
  void enable_difficulty(chain::RetargetRule rule);

  [[nodiscard]] std::uint64_t wins() const { return wins_; }
  [[nodiscard]] double total_power() const { return total_power_; }
  [[nodiscard]] double current_difficulty() const;
  [[nodiscard]] Seconds current_mean_interval() const;

  /// Invoked after every win (miner index, time).
  std::function<void(std::uint32_t, Seconds)> on_win;

 private:
  void schedule_next();
  std::uint32_t pick_miner();

  net::EventQueue& queue_;
  std::vector<protocol::BaseNode*> miners_;
  std::vector<double> powers_;
  double total_power_ = 0;
  Seconds mean_interval_;
  Rng rng_;
  bool started_ = false;
  bool stopped_ = false;
  std::uint64_t wins_ = 0;
  std::optional<chain::DifficultyTracker> difficulty_;
  double initial_total_power_ = 0;
};

/// The win stream of a MiningScheduler as a pull iterator, decoupled from any
/// event queue. Replays the scheduler's RNG draw order bit-for-bit:
/// exponential wait at scheduling time, one uniform per pick at fire time,
/// difficulty retarget on the win timestamp, then the next wait at the
/// post-retarget interval. The parallel engine pulls wins ahead of each safe
/// window and injects them onto the owning shard's queue; because the draw
/// order is identical, digests match the serial scheduler exactly.
///
/// Not supported: set_power mid-run (power-churn scenarios use RunHooks,
/// which force serial execution).
class WinSequence {
 public:
  struct Win {
    Seconds at = 0;
    std::uint32_t miner = 0;
    double work = 1.0;
  };

  /// Same argument contract as MiningScheduler; `rng` must be the same fork
  /// the scheduler would receive, `start_time` the time start() would run.
  WinSequence(std::vector<double> powers, Seconds mean_interval, Rng rng,
              std::optional<chain::RetargetRule> retarget, Seconds start_time);

  /// Time of the next win without consuming it.
  [[nodiscard]] Seconds peek_at() const { return next_at_; }

  /// Consume the next win: advances the RNG and difficulty state exactly as
  /// the scheduler's win callback + schedule_next() pair would.
  Win next();

  [[nodiscard]] std::uint64_t wins() const { return wins_; }

 private:
  [[nodiscard]] Seconds current_mean_interval() const;

  std::vector<double> powers_;
  double total_power_ = 0;
  Seconds mean_interval_;
  Rng rng_;
  std::uint64_t wins_ = 0;
  std::optional<chain::DifficultyTracker> difficulty_;
  double initial_total_power_ = 0;
  Seconds next_at_ = 0;
};

}  // namespace bng::sim
