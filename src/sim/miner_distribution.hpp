// Mining-power population model (paper §7 "Mining Power", Figure 6).
//
// The paper gathered a year of per-block pool attribution (BlockTrail API),
// ranked entities by weekly share, and fit an exponential to the medians:
// share(rank) ∝ exp(-0.27 * rank), R² = 0.99. That data is not distributable;
// we generate populations from the published fit, plus noisy synthetic
// weekly samples to regenerate Figure 6.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace bng::sim {

/// Normalized power vector for `n` miners: power[i] ∝ exp(exponent*(i+1)).
/// With exponent = -0.27 the largest miner holds ~24% of the total,
/// matching the paper's "tending towards 1/4, the size of the largest miner".
std::vector<double> exponential_powers(std::uint32_t n, double exponent = -0.27);

/// Equal power for all miners (idealized baselines and tests).
std::vector<double> uniform_powers(std::uint32_t n);

/// One synthetic "week" of pool shares: exponential ranks perturbed by
/// lognormal noise, renormalized and re-ranked (Fig 6 regeneration).
std::vector<double> synthetic_weekly_shares(std::uint32_t n_pools, double exponent,
                                            double noise_sigma, Rng& rng);

/// Per-rank percentile table over many synthetic weeks.
struct RankStatistics {
  std::vector<double> p25;
  std::vector<double> p50;
  std::vector<double> p75;
};
RankStatistics weekly_rank_statistics(std::uint32_t n_pools, std::uint32_t n_weeks,
                                      double exponent, double noise_sigma, Rng& rng);

/// Fit exp(k*rank) to the medians; returns the exponent k and R² (log space).
struct ExponentFit {
  double exponent = 0;
  double r2 = 0;
};
ExponentFit fit_rank_exponent(const std::vector<double>& medians);

}  // namespace bng::sim
