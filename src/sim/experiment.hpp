// Experiment runner: builds a full emulated deployment (paper §7) and runs
// it to a block-count target.
//
// One Experiment = one data point in the paper's figures: a topology, a
// latency assignment, a miner population, pre-filled mempools, and a
// protocol (Bitcoin / Bitcoin-NG / GHOST) run for a set number of blocks.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "chain/params.hpp"
#include "net/fault_plan.hpp"
#include "net/latency_model.hpp"
#include "net/network.hpp"
#include "protocol/base_node.hpp"
#include "sim/mining_scheduler.hpp"
#include "sim/parallel_engine.hpp"
#include "sim/trace.hpp"

namespace bng::obs {
class SweepTelemetry;
class TraceRing;
}

namespace bng::sim {

/// Declarative adversary: which attack one node runs, how much mining power
/// it holds, and how the honest network splits on races. Replaces the
/// node_factory lambda for the common attack experiments (the lambda stays
/// as the escape hatch and takes precedence when both are set).
struct AdversarySpec {
  enum class Kind {
    kNone,
    /// SM1 block withholding (protocol::WithholdingStrategy): Bitcoin and
    /// GHOST blocks, or NG key blocks.
    kSelfish,
    /// Lead-stubborn withholding (WithholdingStrategy::Mode::kLeadStubborn):
    /// same hosts as kSelfish, but the attacker never takes SM1's safe
    /// lead-1 cash-out and keeps racing instead.
    kStubborn,
    /// NG only: the leader periodically signs conflicting microblocks
    /// (ng::MaliciousLeader), driving detection -> poison -> revocation.
    kEquivocate,
    /// NG only: the leader builds microblocks but never announces them.
    kWithholdMicro,
  };

  Kind kind = Kind::kNone;
  /// Which node is the adversary.
  NodeId node = 0;
  /// Attacker's share of total mining power (alpha). When > 0 and no
  /// custom_powers are given, the population becomes: attacker = alpha,
  /// every honest node = (1 - alpha) / (n - 1). <= 0 leaves the configured
  /// population untouched.
  double power_share = 0.25;
  /// Gamma: share of honest power mining the attacker's branch during a
  /// race. Applied as the honest nodes' tie_switch_prob — the probability
  /// of adopting the *later-arriving* equal-work branch. The attacker's
  /// matching block is published in reaction to the honest find, so it is
  /// the later arrival at almost every honest node and the knob tracks
  /// gamma closely; nodes topologically adjacent to the attacker may see
  /// the reverse order, so the 0 and 1 endpoints are exact only up to that
  /// positioning effect (which the classic gamma also bakes in). 0.5 ==
  /// the paper's unbiased random tie-breaking, order-independent.
  double gamma = 0.5;
  /// kEquivocate: forge a conflicting sibling every k-th led microblock.
  std::uint32_t equivocate_every = 4;

  [[nodiscard]] bool active() const { return kind != Kind::kNone; }
};

/// A fully generated synthetic workload (genesis block + tx pool) that can
/// be shared read-only between experiments. All seeds of a sweep point use
/// the same pool (ROADMAP "synthetic-workload memory"): the pool is a pure
/// function of the deployment parameters, not of the seed, and nodes never
/// mutate it, so one copy serves every run instead of hundreds of MB per
/// seed. Build with build_shared_workload(), which also pre-warms the lazy
/// tx-id/wire-size caches so the pool is safe to read from many threads.
struct PrebuiltWorkload {
  chain::BlockPtr genesis;
  protocol::SyntheticWorkload workload;
};

struct ExperimentConfig {
  chain::Params params;

  // --- Deployment (paper §7) ----------------------------------------------
  /// Paper: 1000 nodes (~15% of the then-operational Bitcoin network).
  std::uint32_t num_nodes = 1000;
  std::uint32_t min_degree = 5;
  net::LinkParams link;  ///< ~100 kbit/s pairwise
  std::optional<net::LatencyModel> latency;  ///< default: default_internet()

  // --- Clustered overlay (10k+-node scaling runs) ---------------------------
  /// >= 2: build Topology::clustered with this many region clusters; edges
  /// inside a cluster draw intra_latency, trunks draw `latency`. 0/1 (the
  /// default) keeps the paper's flat uniform graph — and its exact RNG draw
  /// sequence, so existing scenario digests are untouched.
  std::uint32_t clusters = 0;
  /// Trunk edges per adjacent cluster pair (and random chords) when
  /// clustered.
  std::uint32_t cluster_trunks = 8;
  std::optional<net::LatencyModel> intra_latency;  ///< default: intra_cluster()

  // --- Workload (paper §7 "No Transaction Propagation") --------------------
  std::size_t tx_size = 476;   ///< identical-size txs; ~3.5 tx/s at 1MB/600s
  Amount tx_fee = 10'000;
  /// Pool size; 0 = auto-sized from the stop target with ample slack.
  std::size_t pool_size = 0;

  // --- Stop condition (paper §8: "50-100 Bitcoin blocks or NG microblocks")
  std::uint32_t target_blocks = 60;
  Seconds drain_time = 120;  ///< extra time for the last blocks to settle

  // --- Node model -----------------------------------------------------------
  Seconds verify_fixed = 0.002;
  double verify_bytes_per_second = 25e6;
  bool verify_signatures = false;
  protocol::WorkloadMode workload_mode = protocol::WorkloadMode::kSynthetic;

  // --- Mining population -----------------------------------------------------
  /// Power of node i ∝ exp(power_exponent * (i+1)) — the paper's fit.
  double power_exponent = -0.27;
  /// Override the exponential population entirely.
  std::optional<std::vector<double>> custom_powers;
  /// Enable difficulty retargeting (churn experiments).
  std::optional<chain::RetargetRule> retarget;

  // --- Adversary & faults (attack experiments) ------------------------------
  /// Declarative adversary for the common attack shapes (selfish mining,
  /// NG equivocation / microblock withholding).
  AdversarySpec adversary;
  /// Scheduled network faults: timed partitions, link-delay windows,
  /// eclipses. Empty costs nothing (see net/fault_plan.hpp).
  net::FaultPlan faults;

  // --- Custom node types (escape hatch) -------------------------------------
  /// If set, called for every node id; return nullptr to fall back to the
  /// adversary spec / default node for `params.protocol`. Enables arbitrary
  /// mixed populations beyond what AdversarySpec expresses.
  std::function<std::unique_ptr<protocol::BaseNode>(
      NodeId, net::Network&, chain::BlockPtr, const protocol::NodeConfig&, Rng,
      protocol::IBlockObserver*)>
      node_factory;

  // --- Churn (paper §1: "robust to extreme churn") --------------------------
  struct ChurnEvent {
    Seconds at = 0;
    NodeId node = 0;
    bool online = true;  ///< false: drop all traffic to/from the node
  };
  /// Scheduled connectivity changes, applied during run().
  std::vector<ChurnEvent> churn;

  // --- Parallel-in-time execution (sim/parallel_engine.hpp) -----------------
  /// Shard count for conservative-window multi-core execution of this single
  /// run. 1 (the default) keeps the serial engine byte-for-byte. >= 2
  /// partitions nodes by topology cluster (contiguous id ranges on flat
  /// graphs) into per-thread event queues; digests and RunRecords are
  /// bit-identical for every value, so this is purely a wall-clock knob.
  /// Clamped to num_nodes, and to `clusters` on clustered topologies (a
  /// shard boundary never splits a cluster). Forced to 1 when a TraceRing is
  /// attached (decision traces assume one thread of execution).
  std::uint32_t shards = 1;
  /// Live sink for the parallel engine's efficiency figures (--progress /
  /// --stats-json). Non-owning, never serialized; null costs nothing.
  obs::SweepTelemetry* parallel_telemetry = nullptr;

  // --- Observability (escape hatch, like node_factory: non-owning, never
  // serialized) --------------------------------------------------------------
  /// When set, every node and adversary strategy records its block
  /// accept/withhold/poison decisions here (obs/trace_ring.hpp). Null (the
  /// default) costs one pointer test on the traced paths and nothing else;
  /// recording is purely observational, so the determinism digest is
  /// bit-identical either way.
  obs::TraceRing* trace = nullptr;

  // --- Workload sharing ------------------------------------------------------
  /// If set, use this pre-built pool instead of generating one. Must have
  /// been built from a config with identical workload parameters (protocol,
  /// sizes, tx_size, tx_fee, pool_size, target_blocks); the experiment only
  /// reads it, so one instance can back many concurrent experiments.
  std::shared_ptr<const PrebuiltWorkload> shared_workload;

  std::uint64_t seed = 1;
};

/// Generate the workload `cfg` would build, pre-warming every transaction's
/// lazily cached id and wire size (they are plain mutable fields, so first
/// use must not race across threads). Seed-independent.
[[nodiscard]] std::shared_ptr<const PrebuiltWorkload> build_shared_workload(
    const ExperimentConfig& cfg);

/// FNV-1a digest over exactly the inputs generate_workload() reads (counted
/// block size for the protocol, tx_size, tx_fee, pool_size, target_blocks).
/// Two configs with equal digests build byte-identical PrebuiltWorkloads, so
/// executors key their shared-pool caches by this instead of by sweep point.
[[nodiscard]] std::uint64_t workload_digest(const ExperimentConfig& cfg);

/// FNV-1a digest over every field that changes what a run computes: params,
/// deployment, workload, stop condition, node model, mining population,
/// adversary, faults, churn. Excludes seed and the pure wall-clock /
/// observation knobs (shards, telemetry, trace, shared_workload), which are
/// bit-identical no-ops on the record. Together with the scenario-source
/// hash and the seed this is the record-cache key.
[[nodiscard]] std::uint64_t config_digest(const ExperimentConfig& cfg);

/// False when the config carries state config_digest() cannot see — today
/// that is only the node_factory escape hatch. Uncacheable configs always
/// run fresh.
[[nodiscard]] bool config_cacheable(const ExperimentConfig& cfg);

class Experiment {
 public:
  explicit Experiment(ExperimentConfig cfg);
  ~Experiment();

  /// Build the deployment without running (allows callbacks/attacks setup).
  void build();

  /// Run to the stop condition. Implies build() if not yet built.
  void run();

  // --- Accessors -------------------------------------------------------------
  [[nodiscard]] const ExperimentConfig& config() const { return cfg_; }
  [[nodiscard]] const TraceRecorder& trace() const { return *trace_; }
  [[nodiscard]] const chain::BlockTree& global_tree() const { return trace_->global_tree(); }
  [[nodiscard]] const std::vector<std::unique_ptr<protocol::BaseNode>>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] const std::vector<double>& powers() const { return powers_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] const net::Network& network() const { return *network_; }
  [[nodiscard]] net::EventQueue& queue() { return queue_; }
  [[nodiscard]] MiningScheduler& scheduler() { return *scheduler_; }
  [[nodiscard]] const protocol::SyntheticWorkload& workload() const {
    return cfg_.shared_workload ? cfg_.shared_workload->workload : workload_;
  }
  [[nodiscard]] Seconds end_time() const { return end_time_; }
  [[nodiscard]] chain::BlockPtr genesis() const { return genesis_; }

  /// Count of generated blocks matching the stop-condition type
  /// (Bitcoin/GHOST: PoW blocks; NG: microblocks).
  [[nodiscard]] std::uint64_t counted_blocks() const;

  /// Shard count the run will actually use (cfg clamped at build time);
  /// 1 until build() on parallel configs.
  [[nodiscard]] std::uint32_t effective_shards() const { return shards_; }

  /// Events executed across every shard queue (== queue().events_executed()
  /// when serial).
  [[nodiscard]] std::uint64_t events_executed() const;

  /// Engine measurements from the last parallel run; null after serial runs.
  [[nodiscard]] const ParallelStats* parallel_stats() const {
    return parallel_stats_ ? parallel_stats_.get() : nullptr;
  }

 private:
  friend class ParallelEngine;

  void build_workload();
  void build_nodes();
  std::unique_ptr<protocol::BaseNode> make_adversary(NodeId id,
                                                     const protocol::NodeConfig& ncfg,
                                                     Rng& node_rng,
                                                     protocol::IBlockObserver* observer);

  ExperimentConfig cfg_;
  net::EventQueue queue_;
  Rng master_rng_;
  chain::BlockPtr genesis_;
  protocol::SyntheticWorkload workload_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<MiningScheduler> scheduler_;
  std::vector<std::unique_ptr<protocol::BaseNode>> nodes_;
  std::vector<double> powers_;
  bool built_ = false;
  Seconds end_time_ = 0;

  // --- Parallel mode (shards_ >= 2; see sim/parallel_engine.hpp) ------------
  std::uint32_t shards_ = 1;  ///< effective shard count, set in build_nodes()
  std::vector<std::unique_ptr<net::EventQueue>> shard_queues_;  ///< shards 1..K-1
  std::vector<std::uint32_t> shard_of_;                         ///< node -> shard
  std::vector<std::unique_ptr<ShardObserver>> shard_observers_;
  /// Global-state transitions (churn + faults) in serial scheduling order;
  /// the engine stable_sorts by time and applies them at window barriers.
  std::vector<net::TimedMutation> mutations_;
  std::unique_ptr<ParallelStats> parallel_stats_;
};

}  // namespace bng::sim
