#include "sim/trace.hpp"

#include "obs/trace_ring.hpp"

namespace bng::sim {

namespace {
constexpr std::uint32_t kNoRecord = UINT32_MAX;
}  // namespace

TraceRecorder::TraceRecorder(chain::BlockPtr genesis, std::shared_ptr<BlockInterner> interner)
    : tree_(std::move(genesis), chain::TieBreak::kFirstSeen,
            chain::BlockTree::ForkChoice::kHeaviestChain, nullptr, std::move(interner)) {}

void TraceRecorder::on_block_generated(const chain::BlockPtr& block, NodeId miner,
                                       Seconds at) {
  const BlockId id = tree_.intern(block->id());
  if (id >= index_by_id_.size()) index_by_id_.resize(id + 1, kNoRecord);
  if (index_by_id_[id] == kNoRecord)
    index_by_id_[id] = static_cast<std::uint32_t>(generated_.size());
  generated_.push_back(Generated{block, id, miner, at});
  if (block->type() == chain::BlockType::kMicro)
    ++micro_blocks_;
  else
    ++pow_blocks_;
  // A miner can only extend a block that exists, so the parent is always
  // already present in the reference tree.
  if (!tree_.contains_id(id)) tree_.insert(block, id, at, block->work());
  if (ring_ != nullptr && ring_->wants(obs::kTraceBlocks))
    ring_->record(obs::kTraceBlocks, obs::TraceKind::kGenerate, miner, id,
                  tree_.interner().lookup(block->header().prev));
}

void TraceRecorder::on_fraud_detected(NodeId detector, const Hash256& accused, Seconds at) {
  frauds_.push_back(FraudEvent{detector, accused, at});
  if (ring_ != nullptr && ring_->wants(obs::kTraceAdversary))
    ring_->record(obs::kTraceAdversary, obs::TraceKind::kFraud, detector,
                  tree_.interner().lookup(accused));
}

std::optional<std::size_t> TraceRecorder::find(const Hash256& id) const {
  return find_by_id(tree_.interner().lookup(id));
}

std::optional<std::size_t> TraceRecorder::find_by_id(BlockId id) const {
  if (id >= index_by_id_.size() || index_by_id_[id] == kNoRecord) return std::nullopt;
  return index_by_id_[id];
}

}  // namespace bng::sim
