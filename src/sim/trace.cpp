#include "sim/trace.hpp"

namespace bng::sim {

TraceRecorder::TraceRecorder(chain::BlockPtr genesis)
    : tree_(std::move(genesis), chain::TieBreak::kFirstSeen,
            chain::BlockTree::ForkChoice::kHeaviestChain, nullptr) {}

void TraceRecorder::on_block_generated(const chain::BlockPtr& block, NodeId miner,
                                       Seconds at) {
  index_.emplace(block->id(), generated_.size());
  generated_.push_back(Generated{block, miner, at});
  if (block->type() == chain::BlockType::kMicro)
    ++micro_blocks_;
  else
    ++pow_blocks_;
  // A miner can only extend a block that exists, so the parent is always
  // already present in the reference tree.
  if (!tree_.contains(block->id())) tree_.insert(block, at, block->work());
}

void TraceRecorder::on_fraud_detected(NodeId detector, const Hash256& accused, Seconds at) {
  frauds_.push_back(FraudEvent{detector, accused, at});
}

std::optional<std::size_t> TraceRecorder::find(const Hash256& id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace bng::sim
