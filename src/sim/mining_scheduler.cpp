#include "sim/mining_scheduler.hpp"

#include <numeric>
#include <stdexcept>

namespace bng::sim {

MiningScheduler::MiningScheduler(net::EventQueue& queue,
                                 std::vector<protocol::BaseNode*> miners,
                                 std::vector<double> powers, Seconds mean_interval, Rng rng)
    : queue_(queue),
      miners_(std::move(miners)),
      powers_(std::move(powers)),
      mean_interval_(mean_interval),
      rng_(rng) {
  if (miners_.size() != powers_.size())
    throw std::invalid_argument("MiningScheduler: miners/powers size mismatch");
  if (miners_.empty()) throw std::invalid_argument("MiningScheduler: no miners");
  if (mean_interval_ <= 0) throw std::invalid_argument("MiningScheduler: bad interval");
  total_power_ = std::accumulate(powers_.begin(), powers_.end(), 0.0);
  if (total_power_ <= 0) throw std::invalid_argument("MiningScheduler: zero total power");
  initial_total_power_ = total_power_;
}

void MiningScheduler::start() {
  if (started_) return;
  started_ = true;
  schedule_next();
}

void MiningScheduler::set_power(std::uint32_t miner, double power) {
  if (miner >= powers_.size()) throw std::out_of_range("MiningScheduler: bad miner");
  if (power < 0) throw std::invalid_argument("MiningScheduler: negative power");
  total_power_ += power - powers_[miner];
  powers_[miner] = power;
}

void MiningScheduler::enable_difficulty(chain::RetargetRule rule) {
  // Difficulty in units of (power * seconds): initial value makes the
  // starting interval exactly mean_interval_.
  difficulty_.emplace(total_power_ * mean_interval_, rule);
}

double MiningScheduler::current_difficulty() const {
  return difficulty_ ? difficulty_->difficulty() : total_power_ * mean_interval_;
}

Seconds MiningScheduler::current_mean_interval() const {
  if (!difficulty_) return mean_interval_;
  return difficulty_->difficulty() / total_power_;
}

std::uint32_t MiningScheduler::pick_miner() {
  double u = rng_.uniform() * total_power_;
  double acc = 0;
  for (std::uint32_t i = 0; i < powers_.size(); ++i) {
    acc += powers_[i];
    if (u < acc) return i;
  }
  return static_cast<std::uint32_t>(powers_.size() - 1);  // rounding tail
}

WinSequence::WinSequence(std::vector<double> powers, Seconds mean_interval, Rng rng,
                         std::optional<chain::RetargetRule> retarget, Seconds start_time)
    : powers_(std::move(powers)), mean_interval_(mean_interval), rng_(rng) {
  if (powers_.empty()) throw std::invalid_argument("WinSequence: no miners");
  if (mean_interval_ <= 0) throw std::invalid_argument("WinSequence: bad interval");
  total_power_ = std::accumulate(powers_.begin(), powers_.end(), 0.0);
  if (total_power_ <= 0) throw std::invalid_argument("WinSequence: zero total power");
  initial_total_power_ = total_power_;
  if (retarget) difficulty_.emplace(total_power_ * mean_interval_, *retarget);
  // MiningScheduler::start() draws the first wait when it runs.
  next_at_ = start_time + rng_.exponential(current_mean_interval());
}

Seconds WinSequence::current_mean_interval() const {
  if (!difficulty_) return mean_interval_;
  return difficulty_->difficulty() / total_power_;
}

WinSequence::Win WinSequence::next() {
  Win win;
  win.at = next_at_;
  // Fire-time sequence of the scheduler's win callback: pick (one uniform),
  // count, retarget on the win timestamp, compute work — then the *next*
  // wait is drawn at the post-retarget interval (schedule_next runs last).
  double u = rng_.uniform() * total_power_;
  double acc = 0;
  win.miner = static_cast<std::uint32_t>(powers_.size() - 1);  // rounding tail
  for (std::uint32_t i = 0; i < powers_.size(); ++i) {
    acc += powers_[i];
    if (u < acc) {
      win.miner = i;
      break;
    }
  }
  ++wins_;
  if (difficulty_) difficulty_->on_block(win.at);
  win.work = difficulty_ ? difficulty_->difficulty() / (initial_total_power_ * mean_interval_)
                         : 1.0;
  next_at_ = win.at + rng_.exponential(current_mean_interval());
  return win;
}

void MiningScheduler::schedule_next() {
  if (stopped_) return;
  const Seconds wait = rng_.exponential(current_mean_interval());
  queue_.schedule_in(wait, [this] {
    if (stopped_) return;
    const std::uint32_t miner = pick_miner();
    ++wins_;
    if (difficulty_) difficulty_->on_block(queue_.now());
    // Work in difficulty units; 1.0 per block when difficulty is static.
    const double work = difficulty_
                            ? difficulty_->difficulty() / (initial_total_power_ * mean_interval_)
                            : 1.0;
    miners_[miner]->on_mining_win(work);
    if (on_win) on_win(miner, queue_.now());
    schedule_next();
  });
}

}  // namespace bng::sim
