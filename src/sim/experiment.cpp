#include "sim/experiment.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "bitcoin/bitcoin_node.hpp"
#include "bitcoin/selfish_miner.hpp"
#include "ghost/ghost_node.hpp"
#include "ng/malicious_leader.hpp"
#include "ng/ng_node.hpp"
#include "obs/trace_ring.hpp"
#include "sim/miner_distribution.hpp"

namespace bng::sim {

namespace {
/// Hard cap on synthetic pool size to bound memory (≈ 300 MB of txs).
constexpr std::size_t kMaxPoolSize = 400'000;

/// Generate genesis + tx pool for `cfg`. Deterministic and seed-independent:
/// the pool depends only on the deployment/workload parameters.
PrebuiltWorkload generate_workload(const ExperimentConfig& cfg) {
  std::size_t pool = cfg.pool_size;
  if (pool == 0) {
    // Auto-size: enough transactions to fill every counted block twice over.
    const std::size_t per_block =
        (cfg.params.protocol == chain::Protocol::kBitcoinNG ? cfg.params.max_microblock_size
                                                            : cfg.params.max_block_size) /
        std::max<std::size_t>(cfg.tx_size, 1);
    pool = 2 * static_cast<std::size_t>(cfg.target_blocks) * std::max<std::size_t>(per_block, 1) +
           1000;
  }
  pool = std::min(pool, kMaxPoolSize);

  PrebuiltWorkload out;
  out.genesis = chain::make_genesis(pool, kCoin);
  const Hash256 genesis_txid = out.genesis->txs()[0]->id();

  // Determine padding so that every tx hits exactly cfg.tx_size on the wire.
  auto probe = chain::make_transfer(chain::Outpoint{genesis_txid, 0}, kCoin - cfg.tx_fee,
                                    chain::address_from_tag(0), cfg.tx_fee, 0);
  const std::size_t base_size = probe->wire_size();
  const std::uint32_t padding =
      cfg.tx_size > base_size ? static_cast<std::uint32_t>(cfg.tx_size - base_size) : 0;

  out.workload.txs.reserve(pool);
  for (std::size_t i = 0; i < pool; ++i) {
    out.workload.txs.push_back(chain::make_transfer(
        chain::Outpoint{genesis_txid, static_cast<std::uint32_t>(i)}, kCoin - cfg.tx_fee,
        chain::address_from_tag(i + 1'000'000), cfg.tx_fee, padding));
  }
  out.workload.tx_wire_size =
      out.workload.txs.empty() ? cfg.tx_size : out.workload.txs[0]->wire_size();
  out.workload.fee_per_tx = cfg.tx_fee;
  return out;
}
}  // namespace

std::shared_ptr<const PrebuiltWorkload> build_shared_workload(const ExperimentConfig& cfg) {
  auto shared = std::make_shared<PrebuiltWorkload>(generate_workload(cfg));
  // Warm the lazy per-tx caches while the pool is still owned by one thread:
  // Transaction::id()/wire_size() write plain mutable fields on first use,
  // which would be a data race if first computed by concurrent experiments.
  for (const auto& tx : shared->workload.txs) {
    (void)tx->id();
    (void)tx->wire_size();
  }
  return shared;
}

namespace {

/// FNV-1a accumulator. Local to keep sim free of a runner dependency; the
/// constants match runner/digest.hpp, but the two streams never mix.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<unsigned char>(v >> (8 * i));
      h *= 1099511628211ull;
    }
  }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void latency(const std::optional<net::LatencyModel>& m) {
    u64(m.has_value() ? 1 : 0);
    if (!m) return;
    u64(m->buckets().size());
    for (const net::LatencyBucket& b : m->buckets()) {
      f64(b.lo);
      f64(b.hi);
      f64(b.weight);
    }
  }
};

}  // namespace

std::uint64_t workload_digest(const ExperimentConfig& cfg) {
  Fnv fnv;
  // Exactly generate_workload()'s inputs: the protocol only matters through
  // the counted-block size, so e.g. bitcoin and ghost points share one pool.
  const std::size_t counted = cfg.params.protocol == chain::Protocol::kBitcoinNG
                                  ? cfg.params.max_microblock_size
                                  : cfg.params.max_block_size;
  fnv.u64(counted);
  fnv.u64(cfg.tx_size);
  fnv.u64(static_cast<std::uint64_t>(cfg.tx_fee));
  fnv.u64(cfg.pool_size);
  fnv.u64(cfg.target_blocks);
  return fnv.h;
}

std::uint64_t config_digest(const ExperimentConfig& cfg) {
  Fnv fnv;
  // Consensus parameters.
  const chain::Params& p = cfg.params;
  fnv.u64(static_cast<std::uint64_t>(p.protocol));
  fnv.f64(p.block_interval);
  fnv.u64(p.retarget_interval);
  fnv.f64(p.retarget_clamp);
  fnv.f64(p.microblock_interval);
  fnv.f64(p.min_microblock_interval);
  fnv.u64(p.max_microblock_size);
  fnv.u64(p.max_block_size);
  fnv.u64(static_cast<std::uint64_t>(p.block_subsidy));
  fnv.f64(p.leader_fee_fraction);
  fnv.f64(p.poison_reward_fraction);
  fnv.u64(p.coinbase_maturity);
  fnv.u64(static_cast<std::uint64_t>(p.tie_break));
  fnv.f64(p.tie_switch_prob);
  // Deployment.
  fnv.u64(cfg.num_nodes);
  fnv.u64(cfg.min_degree);
  fnv.f64(cfg.link.bandwidth_bps);
  fnv.u64(cfg.link.per_message_overhead_bytes);
  fnv.latency(cfg.latency);
  fnv.u64(cfg.clusters);
  fnv.u64(cfg.cluster_trunks);
  fnv.latency(cfg.intra_latency);
  // Workload + stop condition.
  fnv.u64(cfg.tx_size);
  fnv.u64(static_cast<std::uint64_t>(cfg.tx_fee));
  fnv.u64(cfg.pool_size);
  fnv.u64(cfg.target_blocks);
  fnv.f64(cfg.drain_time);
  // Node model.
  fnv.f64(cfg.verify_fixed);
  fnv.f64(cfg.verify_bytes_per_second);
  fnv.u64(cfg.verify_signatures ? 1 : 0);
  fnv.u64(static_cast<std::uint64_t>(cfg.workload_mode));
  // Mining population.
  fnv.f64(cfg.power_exponent);
  fnv.u64(cfg.custom_powers.has_value() ? 1 : 0);
  if (cfg.custom_powers) {
    fnv.u64(cfg.custom_powers->size());
    for (double w : *cfg.custom_powers) fnv.f64(w);
  }
  fnv.u64(cfg.retarget.has_value() ? 1 : 0);
  if (cfg.retarget) {
    fnv.u64(cfg.retarget->interval_blocks);
    fnv.f64(cfg.retarget->target_spacing);
    fnv.f64(cfg.retarget->clamp);
  }
  // Adversary.
  fnv.u64(static_cast<std::uint64_t>(cfg.adversary.kind));
  fnv.u64(cfg.adversary.node);
  fnv.f64(cfg.adversary.power_share);
  fnv.f64(cfg.adversary.gamma);
  fnv.u64(cfg.adversary.equivocate_every);
  // Faults.
  fnv.u64(cfg.faults.partitions.size());
  for (const auto& f : cfg.faults.partitions) {
    fnv.f64(f.at);
    fnv.f64(f.heal_at);
    fnv.u64(f.group.size());
    for (NodeId n : f.group) fnv.u64(n);
  }
  fnv.u64(cfg.faults.link_delays.size());
  for (const auto& f : cfg.faults.link_delays) {
    fnv.f64(f.at);
    fnv.f64(f.until);
    fnv.u64(f.a);
    fnv.u64(f.b);
    fnv.f64(f.extra);
  }
  fnv.u64(cfg.faults.eclipses.size());
  for (const auto& f : cfg.faults.eclipses) {
    fnv.f64(f.at);
    fnv.f64(f.heal_at);
    fnv.u64(f.node);
  }
  // Churn.
  fnv.u64(cfg.churn.size());
  for (const auto& c : cfg.churn) {
    fnv.f64(c.at);
    fnv.u64(c.node);
    fnv.u64(c.online ? 1 : 0);
  }
  // Deliberately excluded: seed (part of the cache key), shards /
  // parallel_telemetry / trace / shared_workload (bit-identical no-ops on
  // the record), node_factory (gates cacheability instead, see
  // config_cacheable).
  return fnv.h;
}

bool config_cacheable(const ExperimentConfig& cfg) { return cfg.node_factory == nullptr; }

Experiment::Experiment(ExperimentConfig cfg) : cfg_(std::move(cfg)), master_rng_(cfg_.seed) {}

Experiment::~Experiment() = default;

void Experiment::build_workload() {
  if (cfg_.shared_workload) {
    genesis_ = cfg_.shared_workload->genesis;
    return;
  }
  PrebuiltWorkload generated = generate_workload(cfg_);
  genesis_ = std::move(generated.genesis);
  workload_ = std::move(generated.workload);
}

void Experiment::build_nodes() {
  Rng topo_rng = master_rng_.fork(1);
  Rng latency_rng = master_rng_.fork(2);
  Rng sched_rng = master_rng_.fork(3);

  const bool clustered = cfg_.clusters >= 2;
  net::Topology topology =
      clustered ? net::Topology::clustered(cfg_.num_nodes, cfg_.clusters, cfg_.min_degree,
                                           cfg_.cluster_trunks, topo_rng)
                : net::Topology::random(cfg_.num_nodes, cfg_.min_degree, topo_rng);
  const net::LatencyModel latency =
      cfg_.latency ? *cfg_.latency : net::LatencyModel::default_internet();
  const net::LatencyModel intra =
      cfg_.intra_latency ? *cfg_.intra_latency : net::LatencyModel::intra_cluster();
  network_ = std::make_unique<net::Network>(queue_, topology, latency, cfg_.link,
                                            latency_rng, clustered ? &intra : nullptr);

  // Sharding must be configured before any node is constructed: BaseNode
  // caches its shard queue reference at construction. A TraceRing forces
  // serial (decision traces assume one thread); K is clamped so a shard is
  // never empty and never splits a cluster.
  shards_ = cfg_.trace == nullptr ? std::min(cfg_.shards, cfg_.num_nodes) : 1;
  if (clustered) shards_ = std::min(shards_, topology.num_clusters());
  if (shards_ == 0) shards_ = 1;
  if (shards_ >= 2) {
    std::vector<net::EventQueue*> queues{&queue_};
    shard_queues_.clear();
    for (std::uint32_t s = 1; s < shards_; ++s) {
      shard_queues_.push_back(std::make_unique<net::EventQueue>());
      queues.push_back(shard_queues_.back().get());
    }
    shard_of_.resize(cfg_.num_nodes);
    for (NodeId i = 0; i < cfg_.num_nodes; ++i) {
      // Clusters occupy contiguous id ranges, so both mappings are
      // non-decreasing and every shard is a contiguous node range.
      const std::uint64_t bucket =
          clustered ? static_cast<std::uint64_t>(topology.cluster_of(i)) * shards_ /
                          topology.num_clusters()
                    : static_cast<std::uint64_t>(i) * shards_ / cfg_.num_nodes;
      shard_of_[i] = static_cast<std::uint32_t>(bucket);
    }
    network_->configure_shards(queues, shard_of_);
    // Node trees intern concurrently from shard threads once the engine runs.
    network_->interner()->enable_concurrent();
    shard_observers_.clear();
    for (std::uint32_t s = 0; s < shards_; ++s)
      shard_observers_.push_back(std::make_unique<ShardObserver>());
    // Shard threads read the shared pool concurrently; pre-warm the lazy
    // per-tx caches unless build_shared_workload already did.
    if (!cfg_.shared_workload) {
      for (const auto& tx : workload_.txs) {
        (void)tx->id();
        (void)tx->wire_size();
      }
    }
  }

  // Share the deployment-wide interner so global-tree and node-tree ids agree.
  trace_ = std::make_unique<TraceRecorder>(genesis_, network_->interner());
  if (cfg_.trace != nullptr) {
    cfg_.trace->set_clock([this] { return queue_.now(); });
    trace_->set_ring(cfg_.trace);
  }

  const AdversarySpec& adv = cfg_.adversary;
  if (adv.active() && adv.node >= cfg_.num_nodes)
    throw std::invalid_argument("Experiment: adversary node out of range");
  if ((adv.kind == AdversarySpec::Kind::kEquivocate ||
       adv.kind == AdversarySpec::Kind::kWithholdMicro) &&
      cfg_.params.protocol != chain::Protocol::kBitcoinNG)
    throw std::invalid_argument("Experiment: leader attacks require Bitcoin-NG");

  if (cfg_.custom_powers) {
    powers_ = *cfg_.custom_powers;
  } else if (adv.active() && adv.power_share > 0) {
    // Flat honest population with the attacker holding alpha: the shape the
    // selfish-mining analysis assumes, and what the old ablation built by
    // hand through custom_powers.
    powers_.assign(cfg_.num_nodes,
                   (1.0 - adv.power_share) / std::max(cfg_.num_nodes - 1, 1u));
    powers_[adv.node] = adv.power_share;
  } else {
    powers_ = exponential_powers(cfg_.num_nodes, cfg_.power_exponent);
  }
  if (powers_.size() != cfg_.num_nodes)
    throw std::invalid_argument("Experiment: powers size != num_nodes");

  nodes_.clear();
  nodes_.reserve(cfg_.num_nodes);
  for (NodeId i = 0; i < cfg_.num_nodes; ++i) {
    protocol::NodeConfig ncfg;
    ncfg.params = cfg_.params;
    ncfg.mining_power = powers_[i];
    ncfg.verify_fixed = cfg_.verify_fixed;
    ncfg.verify_bytes_per_second = cfg_.verify_bytes_per_second;
    ncfg.verify_signatures = cfg_.verify_signatures;
    ncfg.workload_mode = cfg_.workload_mode;
    ncfg.workload = &workload();
    ncfg.trace = cfg_.trace;
    // Gamma: honest nodes adopt the attacker's equal-work branch with this
    // probability on a tie (the adversary's own tie-break is forced to
    // first-seen by selfish_config, so only honest nodes see it).
    if (adv.active()) ncfg.params.tie_switch_prob = adv.gamma;
    Rng node_rng = master_rng_.fork(1000 + i);
    // Shard threads must not append to the global recorder concurrently:
    // parallel nodes report into their shard's buffer, replayed at barriers.
    protocol::IBlockObserver* observer =
        shards_ >= 2 ? static_cast<protocol::IBlockObserver*>(shard_observers_[shard_of_[i]].get())
                     : static_cast<protocol::IBlockObserver*>(trace_.get());
    std::unique_ptr<protocol::BaseNode> node;
    if (cfg_.node_factory)
      node = cfg_.node_factory(i, *network_, genesis_, ncfg, node_rng, observer);
    if (node == nullptr && adv.active() && i == adv.node)
      node = make_adversary(i, ncfg, node_rng, observer);
    if (node == nullptr) switch (cfg_.params.protocol) {
      case chain::Protocol::kBitcoin:
        node = std::make_unique<bitcoin::BitcoinNode>(i, *network_, genesis_, ncfg, node_rng,
                                                      observer);
        break;
      case chain::Protocol::kBitcoinNG:
        node = std::make_unique<ng::NgNode>(i, *network_, genesis_, ncfg, node_rng,
                                            observer);
        break;
      case chain::Protocol::kGhost:
        node = std::make_unique<ghost::GhostNode>(i, *network_, genesis_, ncfg, node_rng,
                                                  observer);
        break;
    }
    network_->attach(i, node.get());
    nodes_.push_back(std::move(node));
  }

  std::vector<protocol::BaseNode*> miners;
  miners.reserve(nodes_.size());
  for (auto& n : nodes_) miners.push_back(n.get());
  scheduler_ = std::make_unique<MiningScheduler>(queue_, std::move(miners), powers_,
                                                 cfg_.params.block_interval, sched_rng);
  if (cfg_.retarget) scheduler_->enable_difficulty(*cfg_.retarget);

  // In full-mempool mode every node starts with the identical pool.
  if (cfg_.workload_mode == protocol::WorkloadMode::kFullMempool) {
    for (auto& n : nodes_)
      for (const auto& tx : workload().txs) n->submit_transaction(tx);
  }
}

std::unique_ptr<protocol::BaseNode> Experiment::make_adversary(
    NodeId id, const protocol::NodeConfig& ncfg, Rng& node_rng,
    protocol::IBlockObserver* observer) {
  using Kind = AdversarySpec::Kind;
  switch (cfg_.adversary.kind) {
    case Kind::kSelfish:
    case Kind::kStubborn: {
      const auto mode = cfg_.adversary.kind == Kind::kStubborn
                            ? protocol::WithholdingStrategy::Mode::kLeadStubborn
                            : protocol::WithholdingStrategy::Mode::kSm1;
      switch (cfg_.params.protocol) {
        case chain::Protocol::kBitcoin:
          return std::make_unique<bitcoin::SelfishMiner>(id, *network_, genesis_, ncfg,
                                                         node_rng, observer, mode);
        case chain::Protocol::kBitcoinNG:
          return std::make_unique<ng::SelfishNgMiner>(id, *network_, genesis_, ncfg,
                                                      node_rng, observer, mode);
        case chain::Protocol::kGhost:
          return std::make_unique<ghost::SelfishGhostMiner>(id, *network_, genesis_, ncfg,
                                                            node_rng, observer, mode);
      }
      break;
    }
    case Kind::kEquivocate:
      return std::make_unique<ng::MaliciousLeader>(
          id, *network_, genesis_, ncfg, node_rng, observer,
          ng::MaliciousLeader::Mode::kEquivocate, cfg_.adversary.equivocate_every);
    case Kind::kWithholdMicro:
      return std::make_unique<ng::MaliciousLeader>(
          id, *network_, genesis_, ncfg, node_rng, observer,
          ng::MaliciousLeader::Mode::kWithholdMicroblocks);
    case Kind::kNone:
      break;
  }
  return nullptr;
}

void Experiment::build() {
  if (built_) return;
  built_ = true;
  build_workload();
  build_nodes();
  if (shards_ >= 2) {
    // Parallel mode: global-state transitions become data, applied at window
    // barriers. Collection order matches the serial scheduling order (churn
    // first, then faults), so a stable sort by time reproduces the serial
    // (at, seq) execution order among equal times.
    for (const auto& event : cfg_.churn) {
      if (event.node >= cfg_.num_nodes)
        throw std::invalid_argument("Experiment: churn event for unknown node");
      mutations_.push_back(net::TimedMutation{
          event.at, false,
          [this, event] { network_->set_offline(event.node, !event.online); }});
    }
    std::vector<net::TimedMutation> faults = net::collect_faults(*network_, cfg_.faults);
    for (auto& m : faults) mutations_.push_back(std::move(m));
    std::stable_sort(mutations_.begin(), mutations_.end(),
                     [](const net::TimedMutation& a, const net::TimedMutation& b) {
                       return a.at < b.at;
                     });
    return;
  }
  for (const auto& event : cfg_.churn) {
    if (event.node >= cfg_.num_nodes)
      throw std::invalid_argument("Experiment: churn event for unknown node");
    queue_.schedule_at(event.at, [this, event] {
      network_->set_offline(event.node, !event.online);
    });
  }
  net::schedule_faults(*network_, cfg_.faults);
}

std::uint64_t Experiment::counted_blocks() const {
  return cfg_.params.protocol == chain::Protocol::kBitcoinNG ? trace_->micro_blocks()
                                                             : trace_->pow_blocks();
}

std::uint64_t Experiment::events_executed() const {
  std::uint64_t total = queue_.events_executed();
  for (const auto& q : shard_queues_) total += q->events_executed();
  return total;
}

void Experiment::run() {
  build();
  if (shards_ >= 2) {
    ParallelEngine engine(*this);
    engine.run();
    parallel_stats_ = std::make_unique<ParallelStats>(engine.stats());
    return;
  }
  scheduler_->start();

  // Run until the counted-block target is reached, in bounded steps so the
  // stop condition is re-evaluated as the run progresses.
  const Seconds step = std::max<Seconds>(cfg_.params.block_interval / 4, 1.0);
  // Generous safety horizon: 10000 x the expected run length.
  const Seconds horizon =
      10000.0 * cfg_.params.block_interval * std::max<std::uint32_t>(cfg_.target_blocks, 1);
  while (counted_blocks() < cfg_.target_blocks) {
    if (queue_.now() > horizon)
      throw std::runtime_error("Experiment: stop condition never reached");
    queue_.run_until(queue_.now() + step);
  }
  scheduler_->stop();
  end_time_ = queue_.now() + cfg_.drain_time;
  queue_.run_until(end_time_);
}

}  // namespace bng::sim
