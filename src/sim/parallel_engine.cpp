#include "sim/parallel_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "obs/telemetry.hpp"
#include "sim/experiment.hpp"

namespace bng::sim {

namespace {

constexpr Seconds kInf = std::numeric_limits<Seconds>::infinity();

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Shared coordinator/worker state for the bulk-synchronous loop. One mutex
/// guards everything: the hot path is the sim inside run_until, not the
/// per-window handshake.
struct Control {
  std::mutex mu;
  std::condition_variable cv_go;    ///< coordinator -> workers
  std::condition_variable cv_done;  ///< workers -> coordinator
  std::uint64_t epoch = 0;          ///< window generation counter
  std::uint32_t done = 0;           ///< workers finished with current epoch
  Seconds window_end = 0;
  bool quit = false;

  // Per-shard figures for the epoch just finished, written under mu before
  // the done signal, read by the coordinator once done == shards.
  std::vector<double> last_busy_ms;
  std::vector<Clock::time_point> done_at;
};

}  // namespace

ParallelEngine::ParallelEngine(Experiment& exp) : exp_(exp) {}

void ParallelEngine::run() {
  Experiment& e = exp_;
  const ExperimentConfig& cfg = e.cfg_;
  const std::uint32_t K = e.shards_;
  if (K < 2) throw std::logic_error("ParallelEngine: needs >= 2 shards");

  std::vector<net::EventQueue*> queues{&e.queue_};
  for (auto& q : e.shard_queues_) queues.push_back(q.get());

  // The win stream: same RNG fork, same start time, same draw order as
  // MiningScheduler would produce from serial run() — see WinSequence.
  WinSequence wins(e.powers_, cfg.params.block_interval, e.master_rng_.fork(3),
                   cfg.retarget, e.queue_.now());

  // Engine-private metrics. Deliberately NOT the record registry: RunRecords
  // must be bit-identical to serial runs, so these surface only through
  // stats() / telemetry.
  obs::Registry registry;
  obs::Histogram& hist_stall = registry.histogram(
      "parallel_barrier_stall_ms", {0.01, 0.1, 1.0, 10.0, 100.0}, obs::Unit::kNone,
      "per-shard wait (ms) between finishing a window and the slowest shard finishing");
  obs::Histogram& hist_busy = registry.histogram(
      "parallel_shard_busy_ms", {0.01, 0.1, 1.0, 10.0, 100.0}, obs::Unit::kNone,
      "per-shard execution time (ms) inside one safe window");
  obs::Gauge& gauge_local = registry.gauge(
      "parallel_arena_local_bytes", obs::Unit::kBytes,
      "node-state arena bytes first-touched on their shard's running thread");

  stats_ = ParallelStats{};
  stats_.shards = K;
  stats_.shard_busy_ms.assign(K, 0.0);
  stats_.shard_events.assign(K, 0);

  Control ctl;
  ctl.last_busy_ms.assign(K, 0.0);
  ctl.done_at.assign(K, Clock::time_point{});

  std::vector<double> busy_ms(K, 0.0);  // cumulative, written by each worker only
  std::uint64_t arena_local_bytes = 0;

  auto worker = [&](std::uint32_t s) {
    net::EventQueue& q = *queues[s];
    // First-touch placement: fault this shard's arena slice in from its own
    // thread before any window runs, so a NUMA first-touch policy homes the
    // pages with the thread that will chew on them.
    const std::uint64_t placed = e.network_->node_state()->prefault_slice(s);
    std::uint64_t my_epoch = 0;
    {
      std::lock_guard<std::mutex> lk(ctl.mu);
      arena_local_bytes += placed;
      ++ctl.done;
      if (ctl.done == K) ctl.cv_done.notify_one();
    }
    for (;;) {
      Seconds end;
      {
        std::unique_lock<std::mutex> lk(ctl.mu);
        ctl.cv_go.wait(lk, [&] { return ctl.quit || ctl.epoch > my_epoch; });
        if (ctl.quit) return;
        my_epoch = ctl.epoch;
        end = ctl.window_end;
      }
      const Clock::time_point t0 = Clock::now();
      q.run_until(end);
      const Clock::time_point t1 = Clock::now();
      {
        std::lock_guard<std::mutex> lk(ctl.mu);
        const double dt = ms_between(t0, t1);
        busy_ms[s] += dt;
        ctl.last_busy_ms[s] = dt;
        ctl.done_at[s] = t1;
        ++ctl.done;
        if (ctl.done == K) ctl.cv_done.notify_one();
      }
    }
  };

  const Clock::time_point t_start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(K);
  for (std::uint32_t s = 0; s < K; ++s) threads.emplace_back(worker, s);

  bool workers_down = false;
  auto shutdown = [&] {
    if (workers_down) return;
    workers_down = true;
    {
      std::lock_guard<std::mutex> lk(ctl.mu);
      ctl.quit = true;
    }
    ctl.cv_go.notify_all();
    for (auto& t : threads) t.join();
  };

  try {
    // Wait for the prefault pass (counted as one 'done' round).
    {
      std::unique_lock<std::mutex> lk(ctl.mu);
      ctl.cv_done.wait(lk, [&] { return ctl.done == K; });
    }
    stats_.arena_local_bytes = arena_local_bytes;
    gauge_local.set(static_cast<double>(arena_local_bytes));

    // Mirror of the serial run() loop: same step quantum, same horizon, same
    // boundary accumulation (each boundary is previous + step in the same FP
    // expression order), same stop and drain semantics.
    const Seconds step = std::max<Seconds>(cfg.params.block_interval / 4, 1.0);
    const Seconds horizon = 10000.0 * cfg.params.block_interval *
                            std::max<std::uint32_t>(cfg.target_blocks, 1);
    bool stopped = e.counted_blocks() >= cfg.target_blocks;
    Seconds end_time = kInf;
    if (stopped) {
      e.end_time_ = e.queue_.now() + cfg.drain_time;
      end_time = e.end_time_;
    }
    Seconds next_check = e.queue_.now() + step;
    Seconds prev_end = e.queue_.now();
    std::size_t mut_idx = 0;
    std::vector<net::TimedMutation>& muts = e.mutations_;
    double flushed_busy_ms = 0;
    double flushed_stall_ms = 0;

    // Replay scratch: (time, shard, local index), stable-sorted by time so
    // ties keep (shard, local order) — the deterministic merge order.
    struct ReplayRef {
      Seconds at;
      std::uint32_t shard;
      std::uint32_t index;
    };
    std::vector<ReplayRef> replay;

    for (;;) {
      // --- Window bound: E = min(m + W, next boundary, next mutation, end).
      Seconds m = stopped ? kInf : wins.peek_at();
      for (net::EventQueue* q : queues) m = std::min(m, q->next_time_bound());
      const Seconds lookahead = e.network_->conservative_lookahead();
      if (!(lookahead > 0))
        throw std::runtime_error(
            "ParallelEngine: non-positive cross-shard lookahead (zero-latency "
            "cross-shard link?)");
      Seconds window_end = m + lookahead;  // inf-safe
      if (!stopped) window_end = std::min(window_end, next_check);
      if (mut_idx < muts.size()) window_end = std::min(window_end, muts[mut_idx].at);
      if (stopped) window_end = std::min(window_end, end_time);
      if (!std::isfinite(window_end))
        throw std::runtime_error("ParallelEngine: no finite window bound");

      // --- Inject wins due inside this window, in serial draw order. Safe:
      // m <= win.at for every injected win, so window_end <= win.at +
      // lookahead and any cross-shard message the win triggers arrives at or
      // after the window's end — no shard can have run past it.
      while (!stopped && wins.peek_at() <= window_end) {
        const WinSequence::Win win = wins.next();
        protocol::BaseNode* miner = e.nodes_[win.miner].get();
        e.network_->queue_for(win.miner).schedule_at(
            win.at, [miner, work = win.work] { miner->on_mining_win(work); });
      }

      // --- Release the window and wait for every shard.
      {
        std::lock_guard<std::mutex> lk(ctl.mu);
        ctl.window_end = window_end;
        ctl.done = 0;
        ++ctl.epoch;
      }
      ctl.cv_go.notify_all();
      {
        std::unique_lock<std::mutex> lk(ctl.mu);
        ctl.cv_done.wait(lk, [&] { return ctl.done == K; });
        Clock::time_point slowest = ctl.done_at[0];
        for (std::uint32_t s = 1; s < K; ++s)
          if (ctl.done_at[s] > slowest) slowest = ctl.done_at[s];
        for (std::uint32_t s = 0; s < K; ++s) {
          hist_busy.observe(ctl.last_busy_ms[s]);
          hist_stall.observe(ms_between(ctl.done_at[s], slowest));
        }
      }

      // --- Barrier: merge cross-shard lanes, replay generation buffers,
      // apply global mutations, refresh the lookahead if an edge changed.
      e.network_->flush_lanes();

      replay.clear();
      for (std::uint32_t s = 0; s < K; ++s) {
        const auto& items = e.shard_observers_[s]->items();
        for (std::uint32_t i = 0; i < items.size(); ++i)
          replay.push_back(ReplayRef{items[i].at, s, i});
      }
      std::stable_sort(replay.begin(), replay.end(),
                       [](const ReplayRef& a, const ReplayRef& b) { return a.at < b.at; });
      for (const ReplayRef& r : replay) {
        ShardObserver::Item& item = e.shard_observers_[r.shard]->items()[r.index];
        if (item.fraud) {
          e.trace_->on_fraud_detected(item.node, item.accused, item.at);
        } else {
          e.trace_->on_block_generated(item.block, item.node, item.at);
        }
      }
      for (std::uint32_t s = 0; s < K; ++s) e.shard_observers_[s]->items().clear();

      while (mut_idx < muts.size() && muts[mut_idx].at <= window_end) {
        muts[mut_idx].apply();
        ++stats_.mutations_applied;
        // add_edge_latency marked the network's lookahead dirty; the next
        // loop iteration recomputes the window width (a delay window that
        // shrinks a cross-shard latency mid-run narrows every subsequent
        // window until it reverts).
        if (muts[mut_idx].affects_latency) ++stats_.lookahead_recomputes;
        ++mut_idx;
      }

      ++stats_.windows;
      const Seconds width = window_end - prev_end;
      if (width < stats_.window_min_s) stats_.window_min_s = width;
      stats_.window_sum_s += width;
      prev_end = window_end;

      // --- Stop-condition boundaries (exact serial semantics).
      if (!stopped && window_end == next_check) {
        if (e.counted_blocks() >= cfg.target_blocks) {
          stopped = true;
          e.end_time_ = window_end + cfg.drain_time;
          end_time = e.end_time_;
        } else {
          if (next_check > horizon)
            throw std::runtime_error("Experiment: stop condition never reached");
          next_check += step;
        }
      } else if (stopped && window_end >= end_time) {
        break;
      }

      // --- Live telemetry flush (cheap; every 32 windows).
      if (cfg.parallel_telemetry != nullptr && (stats_.windows & 31u) == 0) {
        double busy_total = 0;
        {
          std::lock_guard<std::mutex> lk(ctl.mu);
          for (std::uint32_t s = 0; s < K; ++s) busy_total += busy_ms[s];
        }
        const double wall = ms_between(t_start, Clock::now());
        const double stall_total = std::max(0.0, wall * K - busy_total);
        cfg.parallel_telemetry->add_parallel_delta(busy_total - flushed_busy_ms,
                                                   stall_total - flushed_stall_ms);
        flushed_busy_ms = busy_total;
        flushed_stall_ms = stall_total;
      }
    }

    shutdown();

    const double wall = ms_between(t_start, Clock::now());
    double busy_total = 0;
    for (std::uint32_t s = 0; s < K; ++s) {
      stats_.shard_busy_ms[s] = busy_ms[s];
      stats_.shard_events[s] = queues[s]->events_executed();
      busy_total += busy_ms[s];
    }
    stats_.busy_ms = busy_total;
    stats_.stall_ms = std::max(0.0, wall * K - busy_total);
    stats_.lane_messages = e.network_->lane_messages();
    if (stats_.windows == 0) stats_.window_min_s = 0;
    stats_.metrics = registry.snapshot();

    if (cfg.parallel_telemetry != nullptr) {
      cfg.parallel_telemetry->add_parallel_delta(stats_.busy_ms - flushed_busy_ms,
                                                 stats_.stall_ms - flushed_stall_ms);
      obs::ParallelFrame frame;
      frame.shards = K;
      frame.windows = stats_.windows;
      frame.lane_messages = stats_.lane_messages;
      frame.arena_local_bytes = stats_.arena_local_bytes;
      frame.window_min_s = stats_.window_min_s;
      frame.window_avg_s = stats_.window_avg_s();
      frame.wall_ms = wall;
      std::uint64_t events = 0;
      for (const std::uint64_t n : stats_.shard_events) events += n;
      frame.events = events;
      cfg.parallel_telemetry->add_parallel_run(frame);
    }
  } catch (...) {
    shutdown();
    throw;
  }
}

}  // namespace bng::sim
