// Parallel-in-time execution of a single run (ROADMAP "scale" track).
//
// A conservative-window (YAWNS-style) engine: nodes are partitioned into K
// shards by topology cluster, each shard owns a private EventQueue and a
// NodeStateArena slice, and shard threads execute events in bulk-synchronous
// safe windows whose width is the minimum cross-shard link latency (plus the
// minimum per-message transfer time). Any message sent inside a window
// arrives strictly after the window's end, so shards cannot miss each
// other's sends; cross-shard deliveries buffer in per-(src, dst) lanes and
// merge at each barrier in deterministic (arrival, src shard, lane sequence)
// order.
//
// Determinism: digests and RunRecords are bit-identical for any --shards K,
// including K=1 vs the serial engine. The three pillars:
//  1. Mining wins are replayed from a WinSequence (same RNG fork, same draw
//     order as MiningScheduler) and injected onto the owning shard's queue
//     ahead of each window, so the win stream is byte-for-byte the serial
//     one.
//  2. Each shard's event execution is order-identical to the serial engine
//     restricted to that shard: intra-shard timing arithmetic (busy_until,
//     cpu_busy, latency draws at wiring time) is the same FP expression
//     sequence.
//  3. Cross-shard interleavings only matter for *simultaneous* events, and
//     event times come from continuous draws (exponential waits, continuous
//     latencies) — ties across shards have probability zero. Within a shard
//     order is preserved exactly; global state mutations (faults, churn)
//     apply at barriers, cutting every window at their scheduled time.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "protocol/observer.hpp"

namespace bng::sim {

class Experiment;

/// Per-shard buffer standing in for the global TraceRecorder while shard
/// threads run: nodes report generations/frauds here (single shard thread,
/// no locking), and the coordinator replays the buffers into the real
/// recorder at each barrier, merged across shards by (time, shard, local
/// order) — the serial recorder's append order up to simultaneous
/// cross-shard events (probability zero under continuous draws).
class ShardObserver final : public protocol::IBlockObserver {
 public:
  struct Item {
    bool fraud = false;
    chain::BlockPtr block;  ///< generation payload (null for frauds)
    Hash256 accused;        ///< fraud payload
    NodeId node = kNoNode;  ///< miner or detector
    Seconds at = 0;
  };

  void on_block_generated(const chain::BlockPtr& block, NodeId miner, Seconds at) override {
    items_.push_back(Item{false, block, Hash256{}, miner, at});
  }
  void on_fraud_detected(NodeId detector, const Hash256& accused, Seconds at) override {
    items_.push_back(Item{true, nullptr, accused, detector, at});
  }

  [[nodiscard]] std::vector<Item>& items() { return items_; }

 private:
  std::vector<Item> items_;
};

/// What the engine measured. Never flows into RunRecords (which must stay
/// bit-identical to serial runs); surfaces through --stats-json / --progress
/// via obs::SweepTelemetry and through benches/tests via stats().
struct ParallelStats {
  std::uint32_t shards = 0;
  std::uint64_t windows = 0;  ///< barriers executed
  double window_min_s = std::numeric_limits<double>::infinity();
  double window_sum_s = 0;
  double busy_ms = 0;   ///< Σ over shards: wall time executing inside windows
  double stall_ms = 0;  ///< Σ over shards: wall time waiting at barriers
  std::uint64_t lane_messages = 0;       ///< cross-shard deliveries merged
  std::uint64_t arena_local_bytes = 0;   ///< bytes first-touched on shard threads
  std::uint64_t mutations_applied = 0;   ///< fault/churn transitions at barriers
  std::uint64_t lookahead_recomputes = 0;  ///< window-width refreshes (delay faults)
  std::vector<double> shard_busy_ms;
  std::vector<std::uint64_t> shard_events;
  /// Snapshot of the engine's private registry (parallel_barrier_stall_ms /
  /// parallel_shard_busy_ms histograms, placement gauge).
  std::vector<std::pair<std::string, double>> metrics;

  [[nodiscard]] double window_avg_s() const {
    return windows > 0 ? window_sum_s / static_cast<double>(windows) : 0;
  }
  /// Parallel efficiency: share of shard wall time spent executing.
  [[nodiscard]] double efficiency() const {
    const double total = busy_ms + stall_ms;
    return total > 0 ? busy_ms / total : 1.0;
  }
};

/// Drives one built Experiment to its stop condition across shard threads.
/// Constructed and invoked by Experiment::run() when config().shards >= 2;
/// owns no simulation state beyond scratch.
class ParallelEngine {
 public:
  explicit ParallelEngine(Experiment& exp);

  /// Equivalent of the serial run() tail: inject wins, execute windows,
  /// apply barriers until target blocks + drain. Throws the serial engine's
  /// "stop condition never reached" past the same horizon.
  void run();

  [[nodiscard]] const ParallelStats& stats() const { return stats_; }

 private:
  Experiment& exp_;
  ParallelStats stats_;
};

}  // namespace bng::sim
