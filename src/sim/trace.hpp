// Trace recording: the global, omniscient view of a run.
//
// Nodes report generated blocks through IBlockObserver; the recorder keeps
// the generation registry and a reference block tree built at generation
// times, from which the metrics suite derives the eventual main chain.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/block_tree.hpp"
#include "common/types.hpp"
#include "protocol/observer.hpp"

namespace bng::sim {

class TraceRecorder : public protocol::IBlockObserver {
 public:
  struct Generated {
    chain::BlockPtr block;
    NodeId miner = kNoNode;
    Seconds at = 0;
  };

  struct FraudEvent {
    NodeId detector = kNoNode;
    Hash256 accused_key_block;
    Seconds at = 0;
  };

  explicit TraceRecorder(chain::BlockPtr genesis);

  void on_block_generated(const chain::BlockPtr& block, NodeId miner, Seconds at) override;
  void on_fraud_detected(NodeId detector, const Hash256& accused, Seconds at) override;

  [[nodiscard]] const std::vector<Generated>& generated() const { return generated_; }
  [[nodiscard]] const std::vector<FraudEvent>& frauds() const { return frauds_; }

  [[nodiscard]] std::uint64_t pow_blocks() const { return pow_blocks_; }
  [[nodiscard]] std::uint64_t micro_blocks() const { return micro_blocks_; }

  /// Reference tree: every generated block at its generation time.
  [[nodiscard]] const chain::BlockTree& global_tree() const { return tree_; }

  /// Generation record for a block id, if any.
  [[nodiscard]] std::optional<std::size_t> find(const Hash256& id) const;
  [[nodiscard]] const Generated& record(std::size_t idx) const { return generated_[idx]; }

 private:
  std::vector<Generated> generated_;
  std::vector<FraudEvent> frauds_;
  std::unordered_map<Hash256, std::size_t, Hash256Hasher> index_;
  chain::BlockTree tree_;
  std::uint64_t pow_blocks_ = 0;
  std::uint64_t micro_blocks_ = 0;
};

}  // namespace bng::sim
