// Trace recording: the global, omniscient view of a run.
//
// Nodes report generated blocks through IBlockObserver; the recorder keeps
// the generation registry and a reference block tree built at generation
// times, from which the metrics suite derives the eventual main chain.
//
// The recorder shares the deployment's BlockInterner (pass the network's),
// so its generation registry and reference tree agree on BlockId with every
// node tree — the metrics pass maps node entries to global entries with
// plain array indexing instead of per-block hash lookups.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "chain/block_tree.hpp"
#include "common/intern.hpp"
#include "common/types.hpp"
#include "protocol/observer.hpp"

namespace bng::obs {
class TraceRing;
}

namespace bng::sim {

class TraceRecorder : public protocol::IBlockObserver {
 public:
  struct Generated {
    chain::BlockPtr block;
    BlockId id = kNoBlockId;  ///< interned identity
    NodeId miner = kNoNode;
    Seconds at = 0;
  };

  struct FraudEvent {
    NodeId detector = kNoNode;
    Hash256 accused_key_block;
    Seconds at = 0;
  };

  /// Pass the deployment-wide interner (net::Network::interner()) so ids
  /// agree across the global tree and every node tree; a standalone recorder
  /// may pass nullptr and owns a private interner.
  explicit TraceRecorder(chain::BlockPtr genesis,
                         std::shared_ptr<BlockInterner> interner = nullptr);

  void on_block_generated(const chain::BlockPtr& block, NodeId miner, Seconds at) override;
  void on_fraud_detected(NodeId detector, const Hash256& accused, Seconds at) override;

  /// Mirror generation/fraud events into a decision trace (obs/trace_ring.hpp).
  /// Null (the default) disables mirroring at the cost of one pointer test.
  void set_ring(obs::TraceRing* ring) { ring_ = ring; }

  [[nodiscard]] const std::vector<Generated>& generated() const { return generated_; }
  [[nodiscard]] const std::vector<FraudEvent>& frauds() const { return frauds_; }

  [[nodiscard]] std::uint64_t pow_blocks() const { return pow_blocks_; }
  [[nodiscard]] std::uint64_t micro_blocks() const { return micro_blocks_; }

  /// Reference tree: every generated block at its generation time.
  [[nodiscard]] const chain::BlockTree& global_tree() const { return tree_; }

  /// Generation record index for a block, if any.
  [[nodiscard]] std::optional<std::size_t> find(const Hash256& id) const;
  [[nodiscard]] std::optional<std::size_t> find_by_id(BlockId id) const;
  [[nodiscard]] const Generated& record(std::size_t idx) const { return generated_[idx]; }

 private:
  std::vector<Generated> generated_;
  std::vector<FraudEvent> frauds_;
  std::vector<std::uint32_t> index_by_id_;  ///< BlockId -> generated_ index
  chain::BlockTree tree_;
  std::uint64_t pow_blocks_ = 0;
  std::uint64_t micro_blocks_ = 0;
  obs::TraceRing* ring_ = nullptr;
};

}  // namespace bng::sim
