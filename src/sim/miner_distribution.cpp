#include "sim/miner_distribution.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "common/stats.hpp"

namespace bng::sim {

std::vector<double> exponential_powers(std::uint32_t n, double exponent) {
  if (n == 0) throw std::invalid_argument("exponential_powers: n == 0");
  std::vector<double> powers(n);
  double total = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    powers[i] = std::exp(exponent * static_cast<double>(i + 1));
    total += powers[i];
  }
  for (auto& p : powers) p /= total;
  return powers;
}

std::vector<double> uniform_powers(std::uint32_t n) {
  if (n == 0) throw std::invalid_argument("uniform_powers: n == 0");
  return std::vector<double>(n, 1.0 / n);
}

std::vector<double> synthetic_weekly_shares(std::uint32_t n_pools, double exponent,
                                            double noise_sigma, Rng& rng) {
  std::vector<double> shares(n_pools);
  double total = 0;
  for (std::uint32_t i = 0; i < n_pools; ++i) {
    double base = std::exp(exponent * static_cast<double>(i + 1));
    shares[i] = base * std::exp(rng.normal(0.0, noise_sigma));
    total += shares[i];
  }
  for (auto& s : shares) s /= total;
  // Weekly rank order: shares are reported by rank, largest first.
  std::sort(shares.begin(), shares.end(), std::greater<>());
  return shares;
}

RankStatistics weekly_rank_statistics(std::uint32_t n_pools, std::uint32_t n_weeks,
                                      double exponent, double noise_sigma, Rng& rng) {
  std::vector<std::vector<double>> by_rank(n_pools);
  for (std::uint32_t w = 0; w < n_weeks; ++w) {
    auto shares = synthetic_weekly_shares(n_pools, exponent, noise_sigma, rng);
    for (std::uint32_t r = 0; r < n_pools; ++r) by_rank[r].push_back(shares[r]);
  }
  RankStatistics stats;
  for (std::uint32_t r = 0; r < n_pools; ++r) {
    stats.p25.push_back(percentile(by_rank[r], 25));
    stats.p50.push_back(percentile(by_rank[r], 50));
    stats.p75.push_back(percentile(by_rank[r], 75));
  }
  return stats;
}

ExponentFit fit_rank_exponent(const std::vector<double>& medians) {
  std::vector<double> ranks(medians.size());
  for (std::size_t i = 0; i < medians.size(); ++i) ranks[i] = static_cast<double>(i + 1);
  LinearFit fit = exponential_fit(ranks, medians);
  return ExponentFit{fit.slope, fit.r2};
}

}  // namespace bng::sim
